//! A lightweight syntactic item model over the token stream, and the
//! two rules that need it (L6 `reactor_blocking`, L9 `lock_across_call`).
//!
//! The token-stream rules (L1–L5, L7, L8) see one file at a time; the
//! invariants added with the reactor and the replication layer are
//! *inter-procedural*: "no blocking call reachable from the event loop"
//! and "no lock held across a call into another crate" cannot be checked
//! without knowing what a called name resolves to. This module recovers
//! just enough structure from the lexer output to answer that:
//!
//! - **Items**: every `fn` with a body, its name, the `impl` type and
//!   trait it belongs to (if any), and the crate it lives in (derived
//!   from `crates/<dir>/` in the path).
//! - **Call sites**: `name(...)` / `recv.name(...)` / `Path::name(...)`
//!   occurrences inside each body, with their leading path segments and
//!   the set of lock guards live at the call (reusing the L5 guard
//!   heuristics).
//! - **Blocking sites**: direct occurrences of known-blocking operations
//!   (file I/O, fsync, `Condvar::wait`, `JoinHandle::join`, channel
//!   `recv`, `thread::sleep`).
//!
//! **Name resolution is a documented over/under-approximation.** Calls
//! resolve by bare name: candidates in the caller's own crate win; a
//! cross-crate edge is added only when the name is defined in exactly
//! one other crate (or the call names the crate explicitly, as in
//! `datacron_storage::append(..)`). Names defined in several foreign
//! crates are ambiguous and produce *no* edge — the model prefers a
//! false negative with a stable shape over a flood of speculative
//! edges. Conversely a method call `x.append(..)` on a non-workspace
//! type can resolve to a workspace `fn append`, which is the
//! over-approximation: such findings are vetted once, in a manifest
//! with a justification, exactly like L5's lock-order pairs.
//!
//! Test code (by path and by `#[cfg(test)]` region) is excluded from
//! the model entirely: a test Handler impl is not an event-loop entry.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::config::{path_is_test, Manifest, NameManifest, Rule};
use crate::engine::{test_mask, Diagnostic};
use crate::lexer::{lex, Token, TokenKind};

/// One call site inside a function body.
#[derive(Debug)]
struct CallSite {
    /// The called name (`append` in `wal.append(..)`).
    name: String,
    /// Leading path segments, outermost first (`["datacron_storage"]`
    /// for `datacron_storage::append(..)`, `["Wal"]` for
    /// `Wal::append(..)`, empty for bare and method calls).
    segments: Vec<String>,
    line: u32,
    /// Lock guards (by lock field name) live at this call, per the L5
    /// guard heuristics. Drives L9.
    held: Vec<String>,
}

/// One direct blocking operation inside a function body.
#[derive(Debug)]
struct BlockSite {
    /// What kind of blocking op (for the message).
    what: &'static str,
    line: u32,
}

/// One `fn` with a body.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// `impl` type the fn sits in (`Reactor` for `impl Reactor {..}`,
    /// `EchoServer` for `impl Handler for EchoServer {..}`).
    pub qual: Option<String>,
    /// Trait being implemented, for trait impls.
    pub trait_name: Option<String>,
    /// Crate name (`datacron-net`), derived from `crates/<dir>/` in the
    /// path; `local` for files outside the crates tree (fixtures).
    pub krate: String,
    pub path: String,
    pub line: u32,
    calls: Vec<CallSite>,
    blocking: Vec<BlockSite>,
}

impl FnItem {
    /// `Qual::name` or bare `name` — the keys the reactor allow-manifest
    /// may vet this function under.
    fn manifest_keys(&self) -> Vec<String> {
        let mut keys = vec![self.name.clone()];
        if let Some(q) = &self.qual {
            keys.push(format!("{q}::{}", self.name));
        }
        keys
    }

    /// Display name for call chains.
    fn display(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace item model: all functions plus a name index.
#[derive(Debug, Default)]
pub struct Model {
    items: Vec<FnItem>,
    by_name: HashMap<String, Vec<usize>>,
}

/// Crate name for a workspace-relative path.
fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|dir| format!("datacron-{dir}"))
        .unwrap_or_else(|| "local".to_string())
}

impl Model {
    /// Builds the model over `(path, source)` pairs. Test files and
    /// `#[cfg(test)]` regions are skipped.
    pub fn build(files: &[(String, String)]) -> Model {
        let mut model = Model::default();
        for (path, src) in files {
            if path_is_test(path) {
                continue;
            }
            let tokens = lex(src);
            let mask = test_mask(&tokens);
            extract_items(path, &tokens, &mask, &mut model.items);
        }
        for (i, item) in model.items.iter().enumerate() {
            model.by_name.entry(item.name.clone()).or_default().push(i);
        }
        model
    }

    /// Number of functions in the model (used by tests).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the model is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolves a call site to item indices, per the policy in the
    /// module docs.
    fn resolve(&self, call: &CallSite, from: &FnItem) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        // Explicit crate path: `datacron_storage::append(..)`.
        if let Some(root) = call.segments.first() {
            if let Some(rest) = root.strip_prefix("datacron_") {
                let krate = format!("datacron-{}", rest.replace('_', "-"));
                return cands
                    .iter()
                    .copied()
                    .filter(|&i| self.items[i].krate == krate)
                    .collect();
            }
            if root == "std" || root == "core" || root == "alloc" {
                return Vec::new();
            }
            if root == "Self" {
                return cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.items[i].krate == from.krate && self.items[i].qual == from.qual
                    })
                    .collect();
            }
        }
        // Qualified by a type: `Wal::append(..)` — only impls of that
        // type count; a type the workspace doesn't implement resolves
        // to nothing (it's std or a dependency).
        if let Some(q) = call.segments.last() {
            if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let v: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.items[i].qual.as_deref() == Some(q.as_str()))
                    .collect();
                return prefer_same_crate(&self.items, v, &from.krate);
            }
        }
        // Bare or method call: own crate wins; else a single foreign
        // crate; else ambiguous -> no edge. Ubiquitous std method names
        // never cross crates: `path.join(..)`, `map.insert(..)` and
        // friends are almost always std calls, and letting them resolve
        // to a workspace fn that happens to share the name floods the
        // graph with spurious edges (the under-approximation half of
        // the documented policy).
        if call.segments.is_empty() && COMMON_STD_NAMES.contains(&call.name.as_str()) {
            return cands
                .iter()
                .copied()
                .filter(|&i| self.items[i].krate == from.krate)
                .collect();
        }
        prefer_same_crate(&self.items, cands.clone(), &from.krate)
    }
}

/// Method/function names so common in std that an unqualified call is
/// assumed NOT to target a same-named workspace item in another crate.
const COMMON_STD_NAMES: [&str; 46] = [
    "read",
    "write",
    "lock",
    "insert",
    "remove",
    "get",
    "get_mut",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "drain",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "max",
    "min",
    "abs",
    "clone",
    "extend",
    "retain",
    "sort",
    "sort_by",
    "send",
    "take",
    "replace",
    "swap",
    "count",
    "sum",
    "first",
    "last",
    "split",
    "trim",
    "parse",
    "join",
    "flush",
    "map",
    "find",
    "new",
    "as_str",
    "saturating_add",
    "saturating_sub",
];

/// Same-crate candidates if any; otherwise all candidates iff they all
/// live in one (other) crate; otherwise none (ambiguous).
fn prefer_same_crate(items: &[FnItem], cands: Vec<usize>, krate: &str) -> Vec<usize> {
    let same: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| items[i].krate == krate)
        .collect();
    if !same.is_empty() {
        return same;
    }
    let crates: HashSet<&str> = cands.iter().map(|&i| items[i].krate.as_str()).collect();
    if crates.len() == 1 {
        cands
    } else {
        Vec::new()
    }
}

/// Walks one file's tokens and appends its `fn` items.
fn extract_items(path: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<FnItem>) {
    let krate = crate_of(path);
    // (depth inside the impl body, type, trait)
    let mut impls: Vec<(usize, Option<String>, Option<String>)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            impls.retain(|(d, _, _)| *d <= depth);
            i += 1;
            continue;
        }
        if t.is_ident("impl") && !mask[i] {
            if let Some((open, qual, tr)) = parse_impl_header(tokens, i) {
                depth += 1;
                impls.push((depth, qual, tr));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") && !mask[i] {
            if let Some(item) = parse_fn(path, &krate, tokens, mask, i, impls.last(), &mut i) {
                out.push(item);
                continue;
            }
        }
        i += 1;
    }
}

/// Parses an `impl` header starting at token `i` (`impl`). Returns the
/// index of the body `{` plus the implemented type and trait names.
fn parse_impl_header(
    tokens: &[Token],
    i: usize,
) -> Option<(usize, Option<String>, Option<String>)> {
    let mut idents: Vec<String> = Vec::new();
    let mut for_at: Option<usize> = None;
    let mut angle = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('{') {
            let qual_from = for_at.unwrap_or(0);
            let qual = idents.get(qual_from..).and_then(|s| s.first()).cloned();
            let trait_name = match for_at {
                Some(f) if f > 0 => idents.get(f - 1).cloned(),
                _ => None,
            };
            return Some((j, qual, trait_name));
        }
        if t.is_punct(';') {
            return None; // e.g. `impl Trait for Type;` (unreachable in practice)
        }
        // `->` inside bound like `Fn() -> T` must not count as `>`.
        if t.is_punct('-') && tokens.get(j + 1).is_some_and(|n| n.is_punct('>')) {
            j += 2;
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if angle == 0 && t.kind == TokenKind::Ident {
            if t.text == "for" {
                for_at = Some(idents.len());
            } else if t.text != "where" && t.text != "dyn" {
                idents.push(t.text.to_string());
            }
        }
        j += 1;
    }
    None
}

/// Parses a `fn` item starting at token `i` (`fn`). On success returns
/// the item and advances `*next` past the body; trait-method
/// declarations without a body advance past the `;` and return None.
fn parse_fn(
    path: &str,
    krate: &str,
    tokens: &[Token],
    mask: &[bool],
    i: usize,
    ctx: Option<&(usize, Option<String>, Option<String>)>,
    next: &mut usize,
) -> Option<FnItem> {
    let name_idx = i + 1;
    let name_tok = tokens.get(name_idx)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // `fn(..)` pointer type
    }
    // Find the body `{` (or `;` for a bodyless declaration) at zero
    // paren/bracket depth.
    let mut j = name_idx + 1;
    let (mut paren, mut bracket) = (0usize, 0usize);
    let body_open = loop {
        let t = tokens.get(j)?;
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket = bracket.saturating_sub(1);
        } else if paren == 0 && bracket == 0 {
            if t.is_punct('{') {
                break j;
            }
            if t.is_punct(';') {
                *next = j + 1;
                return None;
            }
        }
        j += 1;
    };
    // Matching close brace.
    let mut d = 1usize;
    let mut end = body_open + 1;
    while end < tokens.len() && d > 0 {
        if tokens[end].is_punct('{') {
            d += 1;
        } else if tokens[end].is_punct('}') {
            d -= 1;
        }
        end += 1;
    }
    *next = end;
    let (mut calls, mut blocking) = (Vec::new(), Vec::new());
    extract_body(tokens, mask, body_open, end, &mut calls, &mut blocking);
    Some(FnItem {
        name: name_tok.text.to_string(),
        qual: ctx.and_then(|(_, q, _)| q.clone()),
        trait_name: ctx.and_then(|(_, _, t)| t.clone()),
        krate: krate.to_string(),
        path: path.to_string(),
        line: tokens[i].line,
        calls,
        blocking,
    })
}

/// Index of the next non-comment token at or after `i`.
fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if !tokens[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token strictly before `i`.
fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !tokens[j].is_comment() {
            return Some(j);
        }
    }
    None
}

struct Guard {
    var: Option<String>,
    lock: String,
    depth: usize,
}

/// If the receiver chain ending at token `r` (`shared.state` in
/// `let g = shared.state.write()`) is bound by a `let`, returns the
/// bound variable name — same walk as L5's.
fn let_binding_of(tokens: &[Token], r: usize) -> Option<String> {
    let mut b = r;
    while let Some(p) = prev_code(tokens, b) {
        if tokens[p].is_punct('.') {
            if let Some(pp) = prev_code(tokens, p) {
                if tokens[pp].kind == TokenKind::Ident {
                    b = pp;
                    continue;
                }
            }
        }
        break;
    }
    let eq = prev_code(tokens, b)?;
    if !tokens[eq].is_punct('=') {
        return None;
    }
    let v = prev_code(tokens, eq)?;
    if tokens[v].kind != TokenKind::Ident {
        return None;
    }
    let kw = prev_code(tokens, v)?;
    let is_let = tokens[kw].is_ident("let")
        || (tokens[kw].is_ident("mut")
            && prev_code(tokens, kw).is_some_and(|k| tokens[k].is_ident("let")));
    is_let.then(|| tokens[v].text.to_string())
}

/// Walks a fn body (`tokens[start..end]`, `start` at the `{`) collecting
/// call sites, blocking sites, and L5-style lock-guard liveness.
fn extract_body(
    tokens: &[Token],
    mask: &[bool],
    start: usize,
    end: usize,
    calls: &mut Vec<CallSite>,
    blocking: &mut Vec<BlockSite>,
) {
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_comment() || mask[i] {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            held.retain(|g| g.var.is_some());
            i += 1;
            continue;
        }
        if t.is_ident("drop") {
            if let Some(p1) = next_code(tokens, i + 1) {
                if tokens[p1].is_punct('(') {
                    if let Some(a) = next_code(tokens, p1 + 1) {
                        if tokens[a].kind == TokenKind::Ident
                            && next_code(tokens, a + 1).is_some_and(|c| tokens[c].is_punct(')'))
                        {
                            let name = tokens[a].text;
                            held.retain(|g| g.var.as_deref() != Some(name));
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Lock acquisition (same heuristics as L5): track the guard and
        // do not record the acquisition itself as a call.
        if matches!(t.text, "read" | "write" | "lock")
            && prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'))
        {
            let open = next_code(tokens, i + 1);
            let close = open.and_then(|o| next_code(tokens, o + 1));
            if let (Some(o), Some(c)) = (open, close) {
                if tokens[o].is_punct('(') && tokens[c].is_punct(')') {
                    let dot = prev_code(tokens, i).unwrap_or(0);
                    if let Some(r) = prev_code(tokens, dot) {
                        if tokens[r].kind == TokenKind::Ident && tokens[r].text != "self" {
                            let var = let_binding_of(tokens, r);
                            held.push(Guard {
                                var,
                                lock: tokens[r].text.to_string(),
                                depth,
                            });
                            i = c + 1;
                            continue;
                        }
                    }
                }
            }
        }
        // A call: ident [turbofish] `(`.
        if let Some(open) = call_open(tokens, i) {
            if !is_call_keyword(t.text) && !tokens[open].is_punct('!') {
                let is_method = prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'));
                let segments = path_segments(tokens, i);
                let empty_args =
                    next_code(tokens, open + 1).is_some_and(|n| tokens[n].is_punct(')'));
                if let Some(what) = classify_blocking(t.text, is_method, &segments, empty_args) {
                    blocking.push(BlockSite { what, line: t.line });
                }
                let mut live: Vec<String> = held.iter().map(|g| g.lock.clone()).collect();
                live.dedup();
                calls.push(CallSite {
                    name: t.text.to_string(),
                    segments,
                    line: t.line,
                    held: live,
                });
            }
        }
        i += 1;
    }
}

/// If token `i` (an ident) heads a call, returns the index of its `(`
/// (skipping a `::<..>` turbofish). Returns the `!` index for macros so
/// the caller can reject them.
fn call_open(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = next_code(tokens, i + 1)?;
    if tokens[j].is_punct('!') {
        return Some(j); // macro; caller filters
    }
    // Turbofish `::<..>`.
    if tokens[j].is_punct(':') {
        let c2 = next_code(tokens, j + 1)?;
        let lt = next_code(tokens, c2 + 1)?;
        if !(tokens[c2].is_punct(':') && tokens[lt].is_punct('<')) {
            return None;
        }
        let mut d = 1usize;
        j = lt + 1;
        while j < tokens.len() && d > 0 {
            if tokens[j].is_punct('<') {
                d += 1;
            } else if tokens[j].is_punct('>') {
                d -= 1;
            }
            j += 1;
        }
        j = next_code(tokens, j)?;
    }
    tokens[j].is_punct('(').then_some(j)
}

/// Leading `seg::seg::` path of a call, outermost first.
fn path_segments(tokens: &[Token], name_idx: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = name_idx;
    while let Some(c2) = prev_code(tokens, j) {
        if !tokens[c2].is_punct(':') {
            break;
        }
        let Some(c1) = prev_code(tokens, c2) else {
            break;
        };
        if !tokens[c1].is_punct(':') {
            break;
        }
        let Some(s) = prev_code(tokens, c1) else {
            break;
        };
        if tokens[s].kind != TokenKind::Ident {
            break;
        }
        segs.push(tokens[s].text.to_string());
        j = s;
    }
    segs.reverse();
    segs
}

fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "let"
            | "fn"
            | "move"
            | "unsafe"
            | "in"
            | "as"
            | "ref"
            | "mut"
            | "else"
            | "impl"
            | "where"
            | "await"
    )
}

/// Classifies a call as a known-blocking operation, or None.
///
/// Policy: lock acquisition is *not* in this set — short mailbox locks
/// are the reactor's sanctioned handback mechanism, and locks held
/// across calls are L9's domain. The set names the operations that park
/// the calling thread outright.
fn classify_blocking(
    name: &str,
    is_method: bool,
    segments: &[String],
    empty_args: bool,
) -> Option<&'static str> {
    let seg0 = segments.first().map(String::as_str);
    let seg_last = segments.last().map(String::as_str);
    match name {
        "wait" | "wait_timeout" if is_method => Some("Condvar/Child wait"),
        // `JoinHandle::join()` takes no args; `Path::join(p)` does.
        "join" if is_method && empty_args => Some("thread join"),
        "recv" | "recv_timeout" if is_method => Some("blocking channel recv"),
        "sync_all" | "sync_data" | "fsync" => Some("file sync (fsync)"),
        "sleep" if seg0 == Some("thread") || segments.is_empty() => Some("thread sleep"),
        "open" | "create" if seg_last == Some("File") => Some("file open"),
        "open" if is_method => Some("file open (OpenOptions)"),
        _ if seg0 == Some("fs") || seg_last == Some("fs") => Some("std::fs I/O"),
        _ => None,
    }
}

/// L6 `reactor_blocking`: from every reactor entry point (methods of
/// `impl Reactor` and impls of the `Handler` trait), walk the call graph
/// and flag any reachable blocking operation. A function vetted in the
/// reactor allow-manifest (by `name` or `Qual::name`, with a
/// justification) is a sanctioned handback point: neither it nor
/// anything it calls is reported.
pub fn reactor_blocking(model: &Model, allow: &NameManifest) -> Vec<Diagnostic> {
    let mut entries: Vec<usize> = Vec::new();
    for (i, item) in model.items.iter().enumerate() {
        let is_reactor_method = item.qual.as_deref() == Some("Reactor");
        let is_handler_impl = item.trait_name.as_deref() == Some("Handler");
        if (is_reactor_method || is_handler_impl)
            && !item.manifest_keys().iter().any(|k| allow.vetted(k))
        {
            entries.push(i);
        }
    }
    let mut out = Vec::new();
    let mut reported: HashSet<(String, u32)> = HashSet::new();
    for &entry in &entries {
        // BFS with parent pointers for chain rendering.
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::from([entry]);
        let mut seen: HashSet<usize> = HashSet::from([entry]);
        while let Some(v) = queue.pop_front() {
            let item = &model.items[v];
            for b in &item.blocking {
                if !reported.insert((item.path.clone(), b.line)) {
                    continue;
                }
                let chain = render_chain(model, &parent, entry, v);
                out.push(Diagnostic {
                    rule: Rule::ReactorBlocking,
                    path: item.path.clone(),
                    line: b.line,
                    message: format!(
                        "{} reachable from reactor entry `{}` via {}",
                        b.what,
                        model.items[entry].display(),
                        chain
                    ),
                    pair: None,
                    fix: format!(
                        "hand the work to a worker thread, or vet the handback point in \
                         reactor-allow.manifest (`{} # why it does not run on the loop`)",
                        item.display()
                    ),
                });
            }
            for call in &item.calls {
                for tgt in model.resolve(call, item) {
                    if seen.insert(tgt) {
                        let t = &model.items[tgt];
                        if t.manifest_keys().iter().any(|k| allow.vetted(k)) {
                            continue; // vetted handback: prune the subtree
                        }
                        parent.insert(tgt, v);
                        queue.push_back(tgt);
                    }
                }
            }
        }
    }
    out
}

/// Renders `entry -> ... -> v` from BFS parent pointers.
fn render_chain(model: &Model, parent: &HashMap<usize, usize>, entry: usize, v: usize) -> String {
    let mut names = vec![model.items[v].display()];
    let mut cur = v;
    while cur != entry {
        let Some(&p) = parent.get(&cur) else { break };
        names.push(model.items[p].display());
        cur = p;
    }
    names.reverse();
    names.join(" -> ")
}

/// L9 `lock_across_call`: a lock guard live across a call that resolves
/// into another workspace crate must be vetted in the lock-order
/// manifest as `lock -> crate:<crate-name>`. The cross-crate call
/// extends the lock's critical section by an amount this crate cannot
/// see, so the pair is vetted like a lock-order edge.
pub fn lock_across_call(model: &Model, manifest: &Manifest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut reported: HashSet<(String, u32, String, String)> = HashSet::new();
    for item in &model.items {
        for call in &item.calls {
            if call.held.is_empty() {
                continue;
            }
            let mut target_crates: Vec<String> = model
                .resolve(call, item)
                .into_iter()
                .map(|i| model.items[i].krate.clone())
                .filter(|k| *k != item.krate)
                .collect();
            target_crates.sort();
            target_crates.dedup();
            for krate in target_crates {
                let edge = format!("crate:{krate}");
                for lock in &call.held {
                    if manifest.allows(lock, &edge) {
                        continue;
                    }
                    let key = (item.path.clone(), call.line, lock.clone(), edge.clone());
                    if !reported.insert(key) {
                        continue;
                    }
                    out.push(Diagnostic {
                        rule: Rule::LockAcrossCall,
                        path: item.path.clone(),
                        line: call.line,
                        message: format!(
                            "lock `{lock}` held across call `{}` into {krate}; \
                             vet the pair in lock-order.manifest",
                            call.name
                        ),
                        pair: Some((lock.clone(), edge.clone())),
                        fix: format!(
                            "release `{lock}` before the call, or add `{lock} -> {edge}` \
                             to lock-order.manifest with a justification"
                        ),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(files: &[(&str, &str)]) -> Model {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Model::build(&owned)
    }

    #[test]
    fn items_recover_impl_and_trait_context() {
        let m = build(&[(
            "crates/net/src/reactor.rs",
            "impl Reactor { fn run(&mut self) { self.step(); } }\n\
             impl Handler for Echo { fn on_line(&mut self) {} }\n\
             fn free() {}",
        )]);
        assert_eq!(m.len(), 3);
        let run = &m.items[0];
        assert_eq!(run.qual.as_deref(), Some("Reactor"));
        assert_eq!(run.trait_name, None);
        let on_line = &m.items[1];
        assert_eq!(on_line.qual.as_deref(), Some("Echo"));
        assert_eq!(on_line.trait_name.as_deref(), Some("Handler"));
        assert_eq!(run.krate, "datacron-net");
    }

    #[test]
    fn test_regions_and_test_files_are_excluded() {
        let m = build(&[
            (
                "crates/net/src/x.rs",
                "#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}",
            ),
            ("crates/net/tests/t.rs", "fn in_test_file() {}"),
        ]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.items[0].name, "live");
    }

    #[test]
    fn reactor_blocking_follows_the_call_graph() {
        let src = "impl Reactor { fn run(&mut self) { step(); } }\n\
                   fn step() { persist(); }\n\
                   fn persist() { file.sync_all(); }";
        let m = build(&[("crates/net/src/reactor.rs", src)]);
        let diags = reactor_blocking(&m, &NameManifest::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("Reactor::run -> step -> persist"));
    }

    #[test]
    fn reactor_allow_manifest_prunes_the_subtree() {
        let src = "impl Reactor { fn run(&mut self) { handoff(); } }\n\
                   fn handoff() { worker_loop(); }\n\
                   fn worker_loop() { file.sync_all(); }";
        let m = build(&[("crates/net/src/reactor.rs", src)]);
        let allow = NameManifest::parse("handoff # enqueues to the worker pool");
        assert!(reactor_blocking(&m, &allow).is_empty());
        // Without the vet, the fsync is reachable.
        assert_eq!(reactor_blocking(&m, &NameManifest::default()).len(), 1);
    }

    #[test]
    fn ambiguous_cross_crate_names_produce_no_edge() {
        let files = [
            (
                "crates/net/src/reactor.rs",
                "impl Reactor { fn run(&mut self) { tick(); } }",
            ),
            ("crates/storage/src/a.rs", "fn tick() { f.sync_all(); }"),
            ("crates/rdf/src/b.rs", "fn tick() { f.sync_all(); }"),
        ];
        let m = build(&files);
        // `tick` is defined in two foreign crates: ambiguous, no edge.
        assert!(reactor_blocking(&m, &NameManifest::default()).is_empty());
    }

    #[test]
    fn lock_across_call_flags_unvetted_cross_crate_calls() {
        let files = [
            (
                "crates/server/src/s.rs",
                "fn f(s: &S) { let g = s.state.write(); append_record(g.rec); }",
            ),
            ("crates/storage/src/w.rs", "fn append_record(r: R) {}"),
        ];
        let m = build(&files);
        let diags = lock_across_call(&m, &Manifest::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(
            diags[0]
                .pair
                .as_ref()
                .map(|(h, a)| (h.as_str(), a.as_str())),
            Some(("state", "crate:datacron-storage"))
        );
        let vetted = Manifest::parse("state -> crate:datacron-storage");
        assert!(lock_across_call(&m, &vetted).is_empty());
    }

    #[test]
    fn explicit_crate_path_resolves_without_a_definition_index_hit() {
        let files = [
            (
                "crates/server/src/s.rs",
                "fn f(s: &S) { let g = s.state.write(); datacron_storage::append_record(1); }",
            ),
            ("crates/storage/src/w.rs", "fn append_record(r: i64) {}"),
        ];
        let m = build(&files);
        assert_eq!(lock_across_call(&m, &Manifest::default()).len(), 1);
    }

    #[test]
    fn same_crate_calls_do_not_fire_l9() {
        let src = "fn f(s: &S) { let g = s.state.write(); local(); }\nfn local() {}";
        let m = build(&[("crates/server/src/s.rs", src)]);
        assert!(lock_across_call(&m, &Manifest::default()).is_empty());
    }
}
