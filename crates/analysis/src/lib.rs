//! datacron-analysis: the workspace lint engine.
//!
//! A self-contained static analysis over the workspace's Rust sources —
//! no external parser crates, just a hand-rolled lexer ([`lexer`]),
//! token-stream rules ([`rules`]), and a lightweight syntactic item
//! model with an approximate intra-workspace call graph ([`model`]).
//! It enforces the repo-specific correctness gates for the
//! serving/durability path:
//!
//! | id | name               | what it guards                                           |
//! |----|--------------------|----------------------------------------------------------|
//! | L1 | `no_panic`         | no `unwrap`/`expect`/`panic!`/`todo!` in serving crates  |
//! | L2 | `safety_comment`   | every `unsafe` block carries `// SAFETY:`                |
//! | L3 | `truncation`       | no `as` integer casts in binary-format modules           |
//! | L4 | `wallclock`        | wall-clock reads only in designated clock modules        |
//! | L5 | `lock_order`       | nested lock acquisitions vetted in `lock-order.manifest` |
//! | L6 | `reactor_blocking` | no blocking op reachable from a reactor entry point      |
//! | L7 | `ffi_retcheck`     | FFI/syscall results checked, errno surfaced              |
//! | L8 | `atomic_audit`     | every `Ordering::Relaxed` justified (comment/manifest)   |
//! | L9 | `lock_across_call` | lock guards held across cross-crate calls vetted         |
//!
//! Escape hatch: `// lint:allow(<rule>)` on the offending line or the
//! line above suppresses exactly that rule, there. The comment should
//! state *why* the construct is sound.
//!
//! The `datacron-lint` binary runs the engine over the workspace
//! (`cargo run -p datacron-analysis`) and is wired into `scripts/ci.sh`
//! as a hard gate. With explicit file arguments it runs in strict mode
//! (all rules, no path scoping), which is how the fixture tests drive it.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod rules;

pub use config::{Manifest, NameManifest, Rule};
pub use engine::{Diagnostic, Engine};
