//! datacron-lint: command-line front end for the workspace lint engine.
//!
//! Usage:
//!   datacron-lint                       # walk the workspace, scoped rules
//!   datacron-lint FILE...               # strict mode: all rules on FILEs
//!   datacron-lint --manifest PATH ...   # alternate lock-order manifest
//!   datacron-lint --atomics PATH        # alternate atomic-ordering manifest
//!   datacron-lint --reactor-allow PATH  # alternate reactor allow-manifest
//!   datacron-lint --fix-manifest        # vet unknown lock pairs instead
//!                                       # of failing on them
//!   datacron-lint --format json         # SARIF-lite JSON on stdout
//!   datacron-lint --baseline PATH       # suppress findings listed in PATH
//!   datacron-lint --write-baseline PATH # record current findings, exit 0
//!   datacron-lint --explain RULE        # long-form rule description
//!   datacron-lint --root PATH           # workspace root override
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use datacron_analysis::config::{Manifest, NameManifest, Rule};
use datacron_analysis::engine::{Diagnostic, Engine};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut manifest_path: Option<PathBuf> = None;
    let mut atomics_path: Option<PathBuf> = None;
    let mut reactor_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut fix_manifest = false;
    let mut format = Format::Text;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => match args.next() {
                Some(p) => manifest_path = Some(PathBuf::from(p)),
                None => return usage("--manifest needs a path"),
            },
            "--atomics" => match args.next() {
                Some(p) => atomics_path = Some(PathBuf::from(p)),
                None => return usage("--atomics needs a path"),
            },
            "--reactor-allow" => match args.next() {
                Some(p) => reactor_path = Some(PathBuf::from(p)),
                None => return usage("--reactor-allow needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage("--write-baseline needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some(other) => return usage(&format!("unknown format {other}")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--explain" => {
                return match args.next().as_deref().and_then(Rule::from_name) {
                    Some(rule) => {
                        println!("{} {}\n\n{}", rule.id(), rule.name(), rule.explain());
                        ExitCode::SUCCESS
                    }
                    None => usage("--explain needs a rule name or id (e.g. lock_order, L6)"),
                };
            }
            "--fix-manifest" => fix_manifest = true,
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                return usage(&format!("unknown flag {other}"));
            }
            file => files.push(file.to_string()),
        }
    }

    // The binary lives at <root>/crates/analysis, so the workspace root
    // is two levels up from the crate manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let manifest_path =
        manifest_path.unwrap_or_else(|| root.join("crates/analysis/lock-order.manifest"));
    let atomics_path =
        atomics_path.unwrap_or_else(|| root.join("crates/analysis/atomic-ordering.manifest"));
    let reactor_path =
        reactor_path.unwrap_or_else(|| root.join("crates/analysis/reactor-allow.manifest"));
    let mut manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => return io_err(&manifest_path, e),
    };
    let atomics = match NameManifest::load(&atomics_path) {
        Ok(m) => m,
        Err(e) => return io_err(&atomics_path, e),
    };
    let reactor_allow = match NameManifest::load(&reactor_path) {
        Ok(m) => m,
        Err(e) => return io_err(&reactor_path, e),
    };

    let strict = !files.is_empty();
    let engine = if strict {
        Engine::strict(manifest.clone())
    } else {
        Engine::workspace(manifest.clone())
    }
    .with_name_manifests(atomics, reactor_allow);

    let result = if strict {
        let mut sources = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => sources.push((f.clone(), src)),
                Err(e) => {
                    eprintln!("datacron-lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Ok(engine.lint_sources(&sources))
    } else {
        engine.lint_workspace(&root)
    };

    let mut diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("datacron-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_manifest {
        let pairs: Vec<(String, String)> = diags.iter().filter_map(|d| d.pair.clone()).collect();
        match manifest.append_to_file(&manifest_path, &pairs) {
            Ok(added) => {
                for (h, a) in &added {
                    println!(
                        "vetted: {h} -> {a} (appended to {})",
                        manifest_path.display()
                    );
                }
                diags.retain(|d| d.pair.is_none());
            }
            Err(e) => return io_err(&manifest_path, e),
        }
    }

    // Baseline suppression: known findings (path:line:rule) are not
    // violations; they are debt recorded for burn-down.
    if let Some(bp) = &baseline_path {
        let baseline = match std::fs::read_to_string(bp) {
            Ok(t) => t,
            Err(e) => return io_err(bp, e),
        };
        let known: std::collections::HashSet<&str> = baseline
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        diags.retain(|d| !known.contains(baseline_key(d).as_str()));
    }

    if let Some(wp) = &write_baseline {
        let mut text = String::from("# datacron-lint baseline: path:line:rule, one per line\n");
        for d in &diags {
            text.push_str(&baseline_key(d));
            text.push('\n');
        }
        if let Err(e) = std::fs::write(wp, text) {
            return io_err(wp, e);
        }
        eprintln!(
            "datacron-lint: wrote {} finding(s) to {}",
            diags.len(),
            wp.display()
        );
        return ExitCode::SUCCESS;
    }

    match format {
        Format::Json => print_json(&diags),
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
            print_summary(&diags);
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The stable identity of a finding in a baseline file.
fn baseline_key(d: &Diagnostic) -> String {
    format!("{}:{}:{}", d.path, d.line, d.rule.name())
}

/// SARIF-lite: a JSON array of `{rule, name, path, line, message, fix}`
/// objects. Hand-rolled (no serde in the workspace); strings escaped per
/// RFC 8259.
fn print_json(diags: &[Diagnostic]) {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"name\":\"{}\",\"path\":\"{}\",\"line\":{},\
             \"message\":\"{}\",\"fix\":\"{}\"}}",
            d.rule.id(),
            d.rule.name(),
            json_escape(&d.path),
            d.line,
            json_escape(&d.message),
            json_escape(&d.fix),
        ));
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    println!("{out}");
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn io_err(path: &std::path::Path, e: std::io::Error) -> ExitCode {
    eprintln!("datacron-lint: cannot access {}: {e}", path.display());
    ExitCode::from(2)
}

/// Per-rule violation counts, printed even when clean so CI logs show the
/// gate actually ran.
fn print_summary(diags: &[Diagnostic]) {
    let mut counts: BTreeMap<Rule, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let total: usize = counts.values().sum();
    println!("---");
    for rule in Rule::ALL {
        println!(
            "{} {:<17} {}",
            rule.id(),
            rule.name(),
            counts.get(&rule).copied().unwrap_or(0)
        );
    }
    if total == 0 {
        println!("datacron-lint: clean");
    } else {
        println!("datacron-lint: {total} violation(s)");
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("datacron-lint: {msg}");
    eprint!("{}", HELP);
    ExitCode::from(2)
}

const HELP: &str = "\
usage: datacron-lint [OPTIONS] [FILE...]

Without FILEs, walks the workspace and applies the scoped rules L1-L9.
With FILEs, runs in strict mode: every rule on every named file.

  --root PATH           workspace root (default: inferred from the binary)
  --manifest PATH       lock-order manifest (default: crates/analysis/lock-order.manifest)
  --atomics PATH        atomic-ordering manifest (default: crates/analysis/atomic-ordering.manifest)
  --reactor-allow PATH  reactor allow-manifest (default: crates/analysis/reactor-allow.manifest)
  --fix-manifest        append unvetted lock pairs to the manifest instead of failing
  --format text|json    output format (json is SARIF-lite with fix hints)
  --baseline PATH       suppress findings listed in PATH (path:line:rule)
  --write-baseline PATH record current findings to PATH and exit 0
  --explain RULE        print the long-form description of a rule (name or id)
";
