//! datacron-lint: command-line front end for the workspace lint engine.
//!
//! Usage:
//!   datacron-lint                       # walk the workspace, scoped rules
//!   datacron-lint FILE...               # strict mode: all rules on FILEs
//!   datacron-lint --manifest PATH ...   # alternate lock-order manifest
//!   datacron-lint --fix-manifest        # vet unknown lock pairs instead
//!                                       # of failing on them
//!   datacron-lint --root PATH           # workspace root override
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use datacron_analysis::config::{Manifest, Rule};
use datacron_analysis::engine::{Diagnostic, Engine};

fn main() -> ExitCode {
    let mut manifest_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut fix_manifest = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => match args.next() {
                Some(p) => manifest_path = Some(PathBuf::from(p)),
                None => return usage("--manifest needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--fix-manifest" => fix_manifest = true,
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                return usage(&format!("unknown flag {other}"));
            }
            file => files.push(file.to_string()),
        }
    }

    // The binary lives at <root>/crates/analysis, so the workspace root
    // is two levels up from the crate manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let manifest_path =
        manifest_path.unwrap_or_else(|| root.join("crates/analysis/lock-order.manifest"));
    let mut manifest = match Manifest::load(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!(
                "datacron-lint: cannot read {}: {e}",
                manifest_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let strict = !files.is_empty();
    let engine = if strict {
        Engine::strict(manifest.clone())
    } else {
        Engine::workspace(manifest.clone())
    };

    let result = if strict {
        let mut all = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => all.extend(engine.lint_source(f, &src)),
                Err(e) => {
                    eprintln!("datacron-lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Ok(all)
    } else {
        engine.lint_workspace(&root)
    };

    let mut diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("datacron-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_manifest {
        let pairs: Vec<(String, String)> = diags.iter().filter_map(|d| d.pair.clone()).collect();
        match manifest.append_to_file(&manifest_path, &pairs) {
            Ok(added) => {
                for (h, a) in &added {
                    println!(
                        "vetted: {h} -> {a} (appended to {})",
                        manifest_path.display()
                    );
                }
                diags.retain(|d| d.pair.is_none());
            }
            Err(e) => {
                eprintln!(
                    "datacron-lint: cannot update {}: {e}",
                    manifest_path.display()
                );
                return ExitCode::from(2);
            }
        }
    }

    for d in &diags {
        println!("{d}");
    }
    print_summary(&diags);

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Per-rule violation counts, printed even when clean so CI logs show the
/// gate actually ran.
fn print_summary(diags: &[Diagnostic]) {
    let mut counts: BTreeMap<Rule, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let total: usize = counts.values().sum();
    println!("---");
    for rule in Rule::ALL {
        println!(
            "{} {:<15} {}",
            rule.id(),
            rule.name(),
            counts.get(&rule).copied().unwrap_or(0)
        );
    }
    if total == 0 {
        println!("datacron-lint: clean");
    } else {
        println!("datacron-lint: {total} violation(s)");
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("datacron-lint: {msg}");
    eprint!("{}", HELP);
    ExitCode::from(2)
}

const HELP: &str = "\
usage: datacron-lint [--root PATH] [--manifest PATH] [--fix-manifest] [FILE...]

Without FILEs, walks the workspace and applies the scoped rules L1-L5.
With FILEs, runs in strict mode: every rule on every named file.

  --root PATH       workspace root (default: inferred from the binary)
  --manifest PATH   lock-order manifest (default: crates/analysis/lock-order.manifest)
  --fix-manifest    append unvetted lock pairs to the manifest instead of failing
";
