//! The lint engine: walks sources, runs rules, applies scoping,
//! test-region suppression, and the `// lint:allow(<rule>)` escape hatch,
//! and renders diagnostics.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{path_is_test, rule_applies, Manifest, NameManifest, Rule};
use crate::lexer::{lex, Token};
use crate::model::{self, Model};
use crate::rules;

/// One rendered finding.
#[derive(Debug)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path (or the path as given in file mode).
    pub path: String,
    pub line: u32,
    pub message: String,
    /// For `lock_order`/`lock_across_call`: the unvetted
    /// `(held, acquired)` pair, consumed by `--fix-manifest`.
    pub pair: Option<(String, String)>,
    /// Machine-readable fix hint (carried into `--format json`).
    pub fix: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Engine configuration: the manifests and the mode.
pub struct Engine {
    pub manifest: Manifest,
    /// L8: atomics whose Relaxed accesses are vetted, with justification.
    pub atomics: NameManifest,
    /// L6: vetted worker-handback functions.
    pub reactor_allow: NameManifest,
    /// Strict mode (explicit file arguments): every rule runs on every
    /// file, and path-based test detection is off. Used for fixtures.
    pub strict: bool,
}

impl Engine {
    /// Engine for a workspace walk.
    pub fn workspace(manifest: Manifest) -> Engine {
        Engine {
            manifest,
            atomics: NameManifest::default(),
            reactor_allow: NameManifest::default(),
            strict: false,
        }
    }

    /// Engine for explicit files: all rules, no path scoping.
    pub fn strict(manifest: Manifest) -> Engine {
        Engine {
            manifest,
            atomics: NameManifest::default(),
            reactor_allow: NameManifest::default(),
            strict: true,
        }
    }

    /// Replaces the L8/L6 name manifests (builder style).
    pub fn with_name_manifests(mut self, atomics: NameManifest, reactor: NameManifest) -> Engine {
        self.atomics = atomics;
        self.reactor_allow = reactor;
        self
    }

    /// Runs the per-file token rules (L1–L5, L7, L8) on one source text.
    /// `path` is used for scoping (workspace mode) and in the rendered
    /// diagnostics. The call-graph rules L6/L9 need the whole file set —
    /// see [`Engine::lint_sources`].
    pub fn lint_source(&self, path: &str, src: &str) -> Vec<Diagnostic> {
        let tokens = lex(src);
        let in_test_file = !self.strict && path_is_test(path);
        let mask = if in_test_file {
            vec![true; tokens.len()]
        } else {
            test_mask(&tokens)
        };
        let no_mask = vec![false; tokens.len()];
        let allows = allow_lines(&tokens);

        let mut out = Vec::new();
        for rule in Rule::ALL {
            if !self.strict && !rule_applies(rule, path) {
                continue;
            }
            let findings = match rule {
                Rule::NoPanic => rules::no_panic(&tokens, &mask),
                // SAFETY comments are required in test code too.
                Rule::SafetyComment => rules::safety_comment(&tokens, &no_mask),
                Rule::Truncation => rules::truncation(&tokens, &mask),
                Rule::Wallclock => rules::wallclock(&tokens, &mask),
                Rule::LockOrder => rules::lock_order(&tokens, &mask, &self.manifest),
                // Model rules run in lint_sources over the full file set.
                Rule::ReactorBlocking | Rule::LockAcrossCall => Vec::new(),
                Rule::FfiRetcheck => rules::ffi_retcheck(&tokens, &mask),
                Rule::AtomicAudit => rules::atomic_audit(&tokens, &mask, &self.atomics),
            };
            for f in findings {
                if allows.contains(&(rule, f.line)) {
                    continue;
                }
                out.push(Diagnostic {
                    rule,
                    path: path.to_string(),
                    line: f.line,
                    message: f.message,
                    pair: f.pair,
                    fix: rule.fix_hint().to_string(),
                });
            }
        }
        out.sort_by_key(|d| (d.line, d.rule));
        out
    }

    /// Lints a set of `(path, source)` pairs: the per-file token rules on
    /// each file, then the call-graph rules (L6 `reactor_blocking`, L9
    /// `lock_across_call`) over the item model built from the whole set.
    pub fn lint_sources(&self, files: &[(String, String)]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut allows_by_path: std::collections::HashMap<String, HashSet<(Rule, u32)>> =
            std::collections::HashMap::new();
        for (path, src) in files {
            out.extend(self.lint_source(path, src));
            allows_by_path.insert(path.clone(), allow_lines(&lex(src)));
        }
        let model = Model::build(files);
        let mut model_diags = model::reactor_blocking(&model, &self.reactor_allow);
        model_diags.extend(model::lock_across_call(&model, &self.manifest));
        for d in model_diags {
            let allowed = allows_by_path
                .get(&d.path)
                .is_some_and(|a| a.contains(&(d.rule, d.line)));
            if !allowed {
                out.push(d);
            }
        }
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out
    }

    /// Lints one file on disk (the file is its own model, so L6/L9 see
    /// only intra-file calls — which is exactly what the fixtures need).
    pub fn lint_file(&self, root: &Path, rel: &str) -> io::Result<Vec<Diagnostic>> {
        let src = std::fs::read_to_string(root.join(rel))?;
        Ok(self.lint_sources(&[(rel.to_string(), src)]))
    }

    /// Walks the workspace at `root` and lints every tracked `.rs` file.
    /// The lint engine's own test fixtures are deliberate violations and
    /// are skipped.
    pub fn lint_workspace(&self, root: &Path) -> io::Result<Vec<Diagnostic>> {
        let mut paths = Vec::new();
        collect_rs(&root.join("crates"), &mut paths)?;
        collect_rs(&root.join("tests"), &mut paths)?;
        let mut files = Vec::new();
        for file in paths {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            if rel.starts_with("crates/analysis/tests/fixtures/") {
                continue;
            }
            files.push((rel, std::fs::read_to_string(&file)?));
        }
        Ok(self.lint_sources(&files))
    }
}

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output). A missing directory yields nothing.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut items: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    items.sort();
    for path in items {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds the set of `(rule, line)` pairs suppressed by
/// `// lint:allow(<rule>[, <rule>...])` comments. A comment suppresses
/// findings on its own line (trailing form) and on the line of the next
/// code token after it (preceding form).
fn allow_lines(tokens: &[Token]) -> HashSet<(Rule, u32)> {
    let mut set = HashSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let mut rest = t.text;
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            for name in rest[..close].split(',') {
                if let Some(rule) = Rule::from_name(name.trim()) {
                    set.insert((rule, t.line));
                    // The next code token after this comment.
                    let mut j = i + 1;
                    while j < tokens.len() && tokens[j].is_comment() {
                        j += 1;
                    }
                    if let Some(next) = tokens.get(j) {
                        set.insert((rule, next.line));
                    }
                }
            }
            rest = &rest[close..];
        }
    }
    set
}

/// Marks tokens inside test-only regions: items annotated `#[test]`,
/// `#[cfg(test)]` (mod blocks included), and similar `*::test`
/// attributes. `#[cfg(not(test))]` does NOT mark a region.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut is_test_attr = false;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
            } else if t.is_ident("test") {
                // `#[cfg(not(test))]` is the opposite of a test region.
                let negated =
                    j >= 2 && tokens[j - 1].is_punct('(') && tokens[j - 2].is_ident("not");
                if !negated {
                    is_test_attr = true;
                }
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip trailing comments and further attributes to the item.
        let mut k = j;
        loop {
            while k < tokens.len() && tokens[k].is_comment() {
                k += 1;
            }
            if k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
                k += 2;
                let mut d = 1usize;
                while k < tokens.len() && d > 0 {
                    if tokens[k].is_punct('[') {
                        d += 1;
                    } else if tokens[k].is_punct(']') {
                        d -= 1;
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        // The item runs to its matching close brace, or to `;` for
        // brace-less items (`#[cfg(test)] mod tests;`).
        let mut end = k;
        while end < tokens.len() && !tokens[end].is_punct('{') && !tokens[end].is_punct(';') {
            end += 1;
        }
        if end < tokens.len() && tokens[end].is_punct('{') {
            let mut d = 1usize;
            end += 1;
            while end < tokens.len() && d > 0 {
                if tokens[end].is_punct('{') {
                    d += 1;
                } else if tokens[end].is_punct('}') {
                    d -= 1;
                }
                end += 1;
            }
        } else if end < tokens.len() {
            end += 1; // include the `;`
        }
        let end = end.min(tokens.len());
        for m in mask.iter_mut().take(end).skip(attr_start) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Convenience: tokens of `src` paired with their test mask (used by
/// integration tests).
pub fn masked_tokens(src: &str) -> (Vec<Token<'_>>, Vec<bool>) {
    let tokens = lex(src);
    let mask = test_mask(&tokens);
    (tokens, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { y.unwrap(); }\n}";
        let eng = Engine::strict(Manifest::default());
        let diags = eng.lint_source("crates/server/src/x.rs", src);
        let l1: Vec<_> = diags.iter().filter(|d| d.rule == Rule::NoPanic).collect();
        assert_eq!(l1.len(), 1, "only the live unwrap fires: {diags:?}");
        assert_eq!(l1[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let eng = Engine::strict(Manifest::default());
        assert_eq!(eng.lint_source("f.rs", src).len(), 1);
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "fn f() { x.unwrap(); // lint:allow(no_panic) invariant: x set above\n}";
        let eng = Engine::strict(Manifest::default());
        assert!(eng.lint_source("f.rs", src).is_empty());
    }

    #[test]
    fn preceding_allow_suppresses_next_line() {
        let src = "fn f() {\n  // lint:allow(no_panic) invariant: x set above\n  x.unwrap();\n}";
        let eng = Engine::strict(Manifest::default());
        assert!(eng.lint_source("f.rs", src).is_empty());
    }

    #[test]
    fn allow_is_rule_specific() {
        // unwrap + Instant::now on one line; only no_panic is allowed.
        let src = "fn f() { let t = Instant::now(); x.unwrap(); // lint:allow(no_panic)\n}";
        let eng = Engine::strict(Manifest::default());
        let diags = eng.lint_source("f.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::Wallclock);
    }

    #[test]
    fn workspace_mode_scopes_by_path() {
        let eng = Engine::workspace(Manifest::default());
        // unwrap outside the no_panic scope: not flagged.
        assert!(eng
            .lint_source("crates/viz/src/heatmap.rs", "fn f() { x.unwrap(); }")
            .is_empty());
        // ...but in server: flagged.
        assert_eq!(
            eng.lint_source("crates/server/src/server.rs", "fn f() { x.unwrap(); }")
                .len(),
            1
        );
    }
}
