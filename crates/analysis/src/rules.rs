//! The five lint rules, each a pass over the token stream.
//!
//! Every rule takes the token stream plus a `skip` mask (true = token is
//! inside a test region and the rule should not fire there) and returns
//! raw findings as `(line, message)` pairs; the engine attaches rule ids,
//! applies `lint:allow`, and formats diagnostics.

use crate::config::{Manifest, NameManifest};
use crate::lexer::{Token, TokenKind};

/// A raw finding: 1-based line plus human-readable message. For
/// `lock_order` findings the engine also needs the offending pair, so it
/// rides along (None for every other rule).
pub struct Finding {
    pub line: u32,
    pub message: String,
    pub pair: Option<(String, String)>,
}

impl Finding {
    fn new(line: u32, message: String) -> Finding {
        Finding {
            line,
            message,
            pair: None,
        }
    }
}

/// Index of the next non-comment token at or after `i`.
fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if !tokens[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token strictly before `i`.
fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !tokens[j].is_comment() {
            return Some(j);
        }
    }
    None
}

/// L1 `no_panic`: flags `.unwrap()`, `.expect(...)`, `panic!`, `todo!`,
/// and `unimplemented!` outside test code.
pub fn no_panic(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.kind != TokenKind::Ident {
            continue;
        }
        match t.text {
            "unwrap" | "expect" => {
                let method_call = prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'))
                    && next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('('));
                if method_call {
                    out.push(Finding::new(
                        t.line,
                        format!(".{}() can panic; return a typed error instead", t.text),
                    ));
                }
            }
            "panic" | "todo" | "unimplemented"
                if next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('!')) =>
            {
                out.push(Finding::new(
                    t.line,
                    format!(
                        "{}! is forbidden here; return a typed error instead",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// L2 `safety_comment`: every `unsafe` block must have a `// SAFETY:`
/// comment immediately above it (or as the first token inside the block).
pub fn safety_comment(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || !t.is_ident("unsafe") {
            continue;
        }
        // Only unsafe *blocks*: the next code token is `{`. (`unsafe fn`
        // signatures are governed at the call site, where the block is.)
        let Some(open) = next_code(tokens, i + 1) else {
            continue;
        };
        if !tokens[open].is_punct('{') {
            continue;
        }
        // A SAFETY comment anywhere between the start of the enclosing
        // statement and the `unsafe` keyword counts — this accepts both
        // `// SAFETY: ...\nunsafe { .. }` and the equally common
        // `// SAFETY: ...\nlet x = unsafe { .. }`.
        let mut justified = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let back = &tokens[j];
            if back.is_comment() {
                if back.text.contains("SAFETY:") {
                    justified = true;
                    break;
                }
                continue;
            }
            if back.is_punct(';') || back.is_punct('{') || back.is_punct('}') {
                break;
            }
        }
        // ...or the first token inside the block.
        if !justified {
            if let Some(inner) = tokens.get(open + 1) {
                if inner.is_comment() && inner.text.contains("SAFETY:") {
                    justified = true;
                }
            }
        }
        if !justified {
            out.push(Finding::new(
                t.line,
                "unsafe block without a `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// L3 `truncation`: flags every `as <int-type>` cast. In the binary
/// format modules a silent truncation corrupts bytes on disk or on the
/// wire; use `From`/`TryFrom` instead, or carry a `lint:allow(truncation)`
/// with the widening/masking argument.
pub fn truncation(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || !t.is_ident("as") {
            continue;
        }
        let Some(n) = next_code(tokens, i + 1) else {
            continue;
        };
        if tokens[n].kind == TokenKind::Ident && INT_TYPES.contains(&tokens[n].text) {
            out.push(Finding::new(
                t.line,
                format!(
                    "`as {}` cast in a binary-format module; use From/TryFrom",
                    tokens[n].text
                ),
            ));
        }
    }
    out
}

/// L4 `wallclock`: flags `Instant::now` / `SystemTime::now` outside the
/// designated clock modules.
pub fn wallclock(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text != "Instant" && t.text != "SystemTime" {
            continue;
        }
        let Some(c1) = next_code(tokens, i + 1) else {
            continue;
        };
        let Some(c2) = next_code(tokens, c1 + 1) else {
            continue;
        };
        let Some(m) = next_code(tokens, c2 + 1) else {
            continue;
        };
        if tokens[c1].is_punct(':') && tokens[c2].is_punct(':') && tokens[m].is_ident("now") {
            out.push(Finding::new(
                t.line,
                format!(
                    "{}::now() outside a clock module; take time through stream::clock",
                    t.text
                ),
            ));
        }
    }
    out
}

/// A lock guard known to be live: the variable it is bound to (None for
/// an unbound temporary that we still track until end of statement), the
/// lock field it came from, and the brace depth it was bound at.
struct Guard {
    var: Option<String>,
    lock: String,
    depth: usize,
}

/// L5 `lock_order`: flags an acquisition of one lock while a guard from a
/// *different* lock is held, unless the `held -> acquired` pair is vetted
/// in the lock-order manifest.
///
/// Heuristics, tuned for this workspace:
/// - Only `.read()`, `.write()`, and `.lock()` calls with *empty*
///   argument lists count as acquisitions (this filters `io::Read::read`
///   and `io::Write::write`, which always take a buffer).
/// - The lock name is the field identifier before the final dot
///   (`shared.state.read()` → `state`). Calls whose receiver ends in
///   something other than an identifier (e.g. `f().lock()`) are skipped —
///   name them through a let binding to bring them under the lint.
/// - A `let g = <acq>` binding keeps the guard live until its brace scope
///   closes or `drop(g)` is seen; an unbound acquisition is live only to
///   the end of the statement (`;`).
pub fn lock_order(tokens: &[Token], skip: &[bool], manifest: &Manifest) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            // Statement end: unbound temporaries die here.
            held.retain(|g| g.var.is_some());
            i += 1;
            continue;
        }
        // drop(guard) releases.
        if t.is_ident("drop") {
            if let Some(p1) = next_code(tokens, i + 1) {
                if tokens[p1].is_punct('(') {
                    if let Some(a) = next_code(tokens, p1 + 1) {
                        if tokens[a].kind == TokenKind::Ident {
                            if let Some(close) = next_code(tokens, a + 1) {
                                if tokens[close].is_punct(')') {
                                    let name = tokens[a].text;
                                    held.retain(|g| g.var.as_deref() != Some(name));
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        // Acquisition: Ident(lock) . (read|write|lock) ( )
        let is_acq_method = t.kind == TokenKind::Ident
            && matches!(t.text, "read" | "write" | "lock")
            && prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'));
        if is_acq_method {
            let open = next_code(tokens, i + 1);
            let close = open.and_then(|o| next_code(tokens, o + 1));
            let empty_call = matches!((open, close), (Some(o), Some(c))
                if tokens[o].is_punct('(') && tokens[c].is_punct(')'));
            if empty_call {
                // Name the lock: identifier before the final dot.
                let dot = prev_code(tokens, i).unwrap_or(0);
                let recv = prev_code(tokens, dot);
                if let Some(r) = recv {
                    if tokens[r].kind == TokenKind::Ident && tokens[r].text != "self" {
                        let lock = tokens[r].text.to_string();
                        if !skip[i] {
                            for g in &held {
                                if g.lock != lock && !manifest.allows(&g.lock, &lock) {
                                    out.push(Finding {
                                        line: t.line,
                                        message: format!(
                                            "acquired lock `{lock}` while holding `{}`; \
                                             vet the order in lock-order.manifest",
                                            g.lock
                                        ),
                                        pair: Some((g.lock.clone(), lock.clone())),
                                    });
                                }
                            }
                        }
                        // Bound to a let? Walk left over the receiver chain.
                        let mut b = r;
                        while let Some(p) = prev_code(tokens, b) {
                            if tokens[p].is_punct('.') {
                                if let Some(pp) = prev_code(tokens, p) {
                                    if tokens[pp].kind == TokenKind::Ident {
                                        b = pp;
                                        continue;
                                    }
                                }
                            }
                            break;
                        }
                        let var = prev_code(tokens, b).and_then(|eq| {
                            if !tokens[eq].is_punct('=') {
                                return None;
                            }
                            let v = prev_code(tokens, eq)?;
                            if tokens[v].kind != TokenKind::Ident {
                                return None;
                            }
                            let kw = prev_code(tokens, v)?;
                            let is_let = tokens[kw].is_ident("let")
                                || (tokens[kw].is_ident("mut")
                                    && prev_code(tokens, kw)
                                        .is_some_and(|k| tokens[k].is_ident("let")));
                            is_let.then(|| tokens[v].text.to_string())
                        });
                        held.push(Guard { var, lock, depth });
                        i = close.map(|c| c + 1).unwrap_or(i + 1);
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// L7 `ffi_retcheck`: every call to a function declared in an
/// `unsafe extern "C"` block in the same file must consume its return
/// value. Discarded results — statement-position calls (including
/// `unsafe { call(..) };` wrappers) and `let _ = ..` bindings — drop an
/// errno on the floor.
pub fn ffi_retcheck(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    // Pass 1: names declared in extern "C" blocks.
    let mut decls: Vec<&str> = Vec::new();
    let mut decl_spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("extern")
            && next_code(tokens, i + 1)
                .is_some_and(|n| tokens[n].kind == TokenKind::Literal && tokens[n].text == "\"C\"")
        {
            let Some(open) = next_code(tokens, i + 1).and_then(|n| next_code(tokens, n + 1)) else {
                break;
            };
            if tokens[open].is_punct('{') {
                let mut depth = 1usize;
                let mut j = open + 1;
                while j < tokens.len() && depth > 0 {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                    } else if tokens[j].is_ident("fn") {
                        if let Some(n) = next_code(tokens, j + 1) {
                            if tokens[n].kind == TokenKind::Ident {
                                decls.push(tokens[n].text);
                            }
                        }
                    }
                    j += 1;
                }
                decl_spans.push((open, j));
                i = j;
                continue;
            }
        }
        i += 1;
    }
    if decls.is_empty() {
        return Vec::new();
    }
    // Pass 2: call sites of declared names with a discarded result.
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.kind != TokenKind::Ident || !decls.contains(&t.text) {
            continue;
        }
        // Skip the declarations themselves.
        if decl_spans.iter().any(|&(a, b)| i > a && i < b) {
            continue;
        }
        let Some(open) = next_code(tokens, i + 1) else {
            continue;
        };
        if !tokens[open].is_punct('(') {
            continue;
        }
        // Matching close paren.
        let mut depth = 1usize;
        let mut j = open + 1;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
        // After the call: skip closing braces of `unsafe { .. }` wrappers.
        let mut after = j;
        while let Some(n) = next_code(tokens, after) {
            if tokens[n].is_punct('}') {
                after = n + 1;
            } else {
                break;
            }
        }
        let stmt_end = next_code(tokens, after).is_some_and(|n| tokens[n].is_punct(';'));
        if !stmt_end {
            continue; // result flows somewhere: `cvt(..)`, `==`, `.`, return position
        }
        // Walk left over `unsafe {` wrappers (only those — a bare `{` is
        // the enclosing block, not a wrapper) to what consumes the value.
        let mut b = i;
        while let Some(p) = prev_code(tokens, b) {
            if tokens[p].is_punct('{')
                && prev_code(tokens, p).is_some_and(|u| tokens[u].is_ident("unsafe"))
            {
                b = prev_code(tokens, p).unwrap_or(p);
            } else {
                break;
            }
        }
        let discarded = match prev_code(tokens, b) {
            // `let _ = unsafe { call(..) };` discards deliberately — still
            // flagged: check the value and surface the error instead.
            Some(eq) if tokens[eq].is_punct('=') => {
                prev_code(tokens, eq).is_some_and(|v| tokens[v].is_ident("_"))
            }
            // Statement start: nothing consumes the value.
            Some(p) => {
                tokens[p].is_punct(';') || tokens[p].is_punct('}') || tokens[p].is_punct('{')
            }
            None => true,
        };
        if discarded {
            out.push(Finding::new(
                t.line,
                format!(
                    "return value of FFI call `{}` discarded; check it and surface errno",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Atomic RMW/load/store method names whose argument list can carry an
/// `Ordering`.
const ATOMIC_METHODS: [&str; 10] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// L8 `atomic_audit`: an atomic access with `Ordering::Relaxed` must be
/// justified — an `// ordering:` comment within the statement (or
/// trailing on the same line), or the atomic's field name vetted in the
/// atomic-ordering manifest. The rule cannot see threads, so it
/// over-approximates: *every* Relaxed site needs one of the two.
pub fn atomic_audit(tokens: &[Token], skip: &[bool], atomics: &NameManifest) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i]
            || t.kind != TokenKind::Ident
            || !ATOMIC_METHODS.contains(&t.text)
            || !prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'))
        {
            continue;
        }
        let Some(open) = next_code(tokens, i + 1) else {
            continue;
        };
        if !tokens[open].is_punct('(') {
            continue;
        }
        // Scan the argument list for `Relaxed`.
        let mut depth = 1usize;
        let mut j = open + 1;
        let mut relaxed = false;
        let mut last_line = t.line;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            } else if tokens[j].is_ident("Relaxed") {
                relaxed = true;
            }
            last_line = tokens[j].line;
            j += 1;
        }
        if !relaxed {
            continue;
        }
        // The atomic's name: field ident before the method's dot.
        let name = prev_code(tokens, i)
            .and_then(|dot| prev_code(tokens, dot))
            .filter(|&r| tokens[r].kind == TokenKind::Ident && tokens[r].text != "self")
            .map(|r| tokens[r].text.to_string());
        if let Some(n) = &name {
            if atomics.vetted(n) {
                continue;
            }
        }
        // `// ordering:` within the statement (walk back over comments to
        // the previous `;`/`{`/`}`) or trailing on any line of the call.
        let mut justified = false;
        let mut b = i;
        while b > 0 {
            b -= 1;
            let back = &tokens[b];
            if back.is_comment() {
                if back.text.contains("ordering:") {
                    justified = true;
                    break;
                }
                continue;
            }
            if back.is_punct(';') || back.is_punct('{') || back.is_punct('}') {
                break;
            }
        }
        if !justified {
            justified = tokens[j..]
                .iter()
                .take_while(|n| n.line <= last_line)
                .any(|n| n.is_comment() && n.text.contains("ordering:"));
        }
        if !justified {
            let shown = name.as_deref().unwrap_or("<unnamed>");
            out.push(Finding::new(
                t.line,
                format!(
                    "Ordering::Relaxed on `{shown}` without an `// ordering:` comment \
                     or an atomic-ordering.manifest entry"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run<F>(src: &str, f: F) -> Vec<Finding>
    where
        F: Fn(&[Token], &[bool]) -> Vec<Finding>,
    {
        let toks = lex(src);
        let skip = vec![false; toks.len()];
        f(&toks, &skip)
    }

    #[test]
    fn no_panic_catches_method_calls_only() {
        let f = run(
            "fn f() { x.unwrap(); let unwrap = 1; y.expect(\"m\"); }",
            no_panic,
        );
        assert_eq!(f.len(), 2);
        let f = run("fn f() { panic!(\"boom\"); todo!() }", no_panic);
        assert_eq!(f.len(), 2);
        // Words inside strings/comments never fire.
        let f = run("// call .unwrap() here\nlet s = \".unwrap()\";", no_panic);
        assert!(f.is_empty());
    }

    #[test]
    fn safety_comment_above_or_inside() {
        assert_eq!(run("fn f() { unsafe { g() } }", safety_comment).len(), 1);
        // A SAFETY comment on the enclosing fn is not adjacent to the block.
        assert_eq!(
            run(
                "// SAFETY: g is fine\nfn f() { unsafe { g() } }",
                safety_comment
            )
            .len(),
            1
        );
        assert!(run(
            "fn f() {\n  // SAFETY: g is fine\n  unsafe { g() } }",
            safety_comment
        )
        .is_empty());
        // The statement form: comment above `let x = unsafe { ... }`.
        assert!(run(
            "fn f() {\n  // SAFETY: g is fine\n  let x = unsafe { g() };\n}",
            safety_comment
        )
        .is_empty());
        // ...but a SAFETY comment before the *previous* statement does
        // not leak forward across the `;`.
        assert_eq!(
            run(
                "fn f() {\n  // SAFETY: stale\n  let a = 1;\n  let x = unsafe { g() };\n}",
                safety_comment
            )
            .len(),
            1
        );
        assert!(run(
            "fn f() { unsafe { // SAFETY: g is fine\n g() } }",
            safety_comment
        )
        .is_empty());
        // `unsafe fn` signature alone is not a block.
        assert!(run("unsafe fn f() {}", safety_comment).is_empty());
    }

    #[test]
    fn truncation_flags_int_casts() {
        let f = run(
            "let x = y as u32; let z = w as f64; use a as b;",
            truncation,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("u32"));
    }

    #[test]
    fn wallclock_matches_path_calls() {
        let f = run(
            "let t = Instant::now(); let s = std::time::SystemTime::now();",
            wallclock,
        );
        assert_eq!(f.len(), 2);
        assert!(run("let d = Instant::elapsed(&t);", wallclock).is_empty());
    }

    fn run_l5(src: &str, manifest: &str) -> Vec<Finding> {
        let toks = lex(src);
        let skip = vec![false; toks.len()];
        lock_order(&toks, &skip, &Manifest::parse(manifest))
    }

    #[test]
    fn lock_order_flags_unvetted_nesting() {
        let src = "fn f(s: &S) { let a = s.state.write(); let b = s.storage.lock(); }";
        assert_eq!(run_l5(src, "").len(), 1);
        assert!(run_l5(src, "state -> storage").is_empty());
        // Reverse order is not vetted by the forward edge.
        let rev = "fn f(s: &S) { let b = s.storage.lock(); let a = s.state.write(); }";
        assert_eq!(run_l5(rev, "state -> storage").len(), 1);
    }

    #[test]
    fn lock_order_scope_and_drop_release() {
        let scoped = "fn f(s: &S) { { let a = s.state.write(); } let b = s.storage.lock(); }";
        assert!(run_l5(scoped, "").is_empty());
        let dropped = "fn f(s: &S) { let a = s.state.write(); drop(a); let b = s.storage.lock(); }";
        assert!(run_l5(dropped, "").is_empty());
    }

    #[test]
    fn lock_order_ignores_buffered_io_reads() {
        let src = "fn f(r: &mut R, buf: &mut [u8]) { let g = s.state.read(); r.read(buf); }";
        assert!(run_l5(src, "").is_empty());
    }

    const EXTERN_DECL: &str = "unsafe extern \"C\" { fn close(fd: i32) -> i32; }\n";

    #[test]
    fn ffi_retcheck_flags_discarded_results() {
        // Statement-position call inside an unsafe block: discarded.
        let bad = format!("{EXTERN_DECL}fn f(fd: i32) {{ unsafe {{ close(fd) }}; }}");
        assert_eq!(run(&bad, ffi_retcheck).len(), 1);
        // `let _ =` is a deliberate discard: still flagged.
        let underscore =
            format!("{EXTERN_DECL}fn f(fd: i32) {{ let _ = unsafe {{ close(fd) }}; }}");
        assert_eq!(run(&underscore, ffi_retcheck).len(), 1);
        // Consumed through cvt(): fine.
        let wrapped = format!("{EXTERN_DECL}fn f(fd: i32) -> R {{ cvt(unsafe {{ close(fd) }}) }}");
        assert!(run(&wrapped, ffi_retcheck).is_empty());
        // Bound and checked: fine.
        let bound = format!(
            "{EXTERN_DECL}fn f(fd: i32) {{ let rc = unsafe {{ close(fd) }}; if rc < 0 {{ g(); }} }}"
        );
        assert!(run(&bound, ffi_retcheck).is_empty());
        // Calls to undeclared names never fire.
        assert!(run("fn f() { other(1); }", ffi_retcheck).is_empty());
    }

    fn run_l8(src: &str, manifest: &str) -> Vec<Finding> {
        let toks = lex(src);
        let skip = vec![false; toks.len()];
        atomic_audit(&toks, &skip, &NameManifest::parse(manifest))
    }

    #[test]
    fn atomic_audit_requires_justification() {
        let bare = "fn f(c: &C) { c.hits.fetch_add(1, Ordering::Relaxed); }";
        let diags = run_l8(bare, "");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`hits`"));
        // Vetted by manifest (justification required by the parser).
        assert!(run_l8(bare, "hits # monotonic metrics counter").is_empty());
        // Justified by a preceding `// ordering:` comment.
        let commented = "fn f(c: &C) {\n  // ordering: counter, no consumer orders on it\n  \
                         c.hits.fetch_add(1, Ordering::Relaxed);\n}";
        assert!(run_l8(commented, "").is_empty());
        // Trailing comment on the same line also counts.
        let trailing = "fn f(c: &C) { c.hits.load(Ordering::Relaxed); // ordering: heuristic\n}";
        assert!(run_l8(trailing, "").is_empty());
        // Non-Relaxed orderings need no justification.
        let rel = "fn f(c: &C) { c.head.store(1, Ordering::Release); }";
        assert!(run_l8(rel, "").is_empty());
        // A bare `Relaxed` import is still caught.
        let imported = "fn f(c: &C) { c.hits.fetch_add(1, Relaxed); }";
        assert_eq!(run_l8(imported, "").len(), 1);
    }

    #[test]
    fn atomic_audit_unnamed_receiver_needs_a_comment() {
        // Tuple-field receiver: no name to vet, so only a comment helps.
        let src = "fn f(&self) { self.0.fetch_add(1, Ordering::Relaxed); }";
        let diags = run_l8(src, "0 # not reachable by name");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("<unnamed>"));
    }

    #[test]
    fn lock_order_temporary_dies_at_statement_end() {
        let src = "fn f(s: &S) { s.state.read().len(); let b = s.storage.lock(); }";
        assert!(run_l5(src, "").is_empty());
        // ...but two temporaries in one statement do nest.
        let nested = "fn f(s: &S) { g(s.state.read(), s.storage.lock()); }";
        assert_eq!(run_l5(nested, "").len(), 1);
    }
}
