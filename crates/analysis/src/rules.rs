//! The five lint rules, each a pass over the token stream.
//!
//! Every rule takes the token stream plus a `skip` mask (true = token is
//! inside a test region and the rule should not fire there) and returns
//! raw findings as `(line, message)` pairs; the engine attaches rule ids,
//! applies `lint:allow`, and formats diagnostics.

use crate::config::Manifest;
use crate::lexer::{Token, TokenKind};

/// A raw finding: 1-based line plus human-readable message. For
/// `lock_order` findings the engine also needs the offending pair, so it
/// rides along (None for every other rule).
pub struct Finding {
    pub line: u32,
    pub message: String,
    pub pair: Option<(String, String)>,
}

impl Finding {
    fn new(line: u32, message: String) -> Finding {
        Finding {
            line,
            message,
            pair: None,
        }
    }
}

/// Index of the next non-comment token at or after `i`.
fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if !tokens[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the previous non-comment token strictly before `i`.
fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !tokens[j].is_comment() {
            return Some(j);
        }
    }
    None
}

/// L1 `no_panic`: flags `.unwrap()`, `.expect(...)`, `panic!`, `todo!`,
/// and `unimplemented!` outside test code.
pub fn no_panic(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.kind != TokenKind::Ident {
            continue;
        }
        match t.text {
            "unwrap" | "expect" => {
                let method_call = prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'))
                    && next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('('));
                if method_call {
                    out.push(Finding::new(
                        t.line,
                        format!(".{}() can panic; return a typed error instead", t.text),
                    ));
                }
            }
            "panic" | "todo" | "unimplemented"
                if next_code(tokens, i + 1).is_some_and(|n| tokens[n].is_punct('!')) =>
            {
                out.push(Finding::new(
                    t.line,
                    format!(
                        "{}! is forbidden here; return a typed error instead",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// L2 `safety_comment`: every `unsafe` block must have a `// SAFETY:`
/// comment immediately above it (or as the first token inside the block).
pub fn safety_comment(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || !t.is_ident("unsafe") {
            continue;
        }
        // Only unsafe *blocks*: the next code token is `{`. (`unsafe fn`
        // signatures are governed at the call site, where the block is.)
        let Some(open) = next_code(tokens, i + 1) else {
            continue;
        };
        if !tokens[open].is_punct('{') {
            continue;
        }
        // A SAFETY comment anywhere between the start of the enclosing
        // statement and the `unsafe` keyword counts — this accepts both
        // `// SAFETY: ...\nunsafe { .. }` and the equally common
        // `// SAFETY: ...\nlet x = unsafe { .. }`.
        let mut justified = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let back = &tokens[j];
            if back.is_comment() {
                if back.text.contains("SAFETY:") {
                    justified = true;
                    break;
                }
                continue;
            }
            if back.is_punct(';') || back.is_punct('{') || back.is_punct('}') {
                break;
            }
        }
        // ...or the first token inside the block.
        if !justified {
            if let Some(inner) = tokens.get(open + 1) {
                if inner.is_comment() && inner.text.contains("SAFETY:") {
                    justified = true;
                }
            }
        }
        if !justified {
            out.push(Finding::new(
                t.line,
                "unsafe block without a `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// L3 `truncation`: flags every `as <int-type>` cast. In the binary
/// format modules a silent truncation corrupts bytes on disk or on the
/// wire; use `From`/`TryFrom` instead, or carry a `lint:allow(truncation)`
/// with the widening/masking argument.
pub fn truncation(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || !t.is_ident("as") {
            continue;
        }
        let Some(n) = next_code(tokens, i + 1) else {
            continue;
        };
        if tokens[n].kind == TokenKind::Ident && INT_TYPES.contains(&tokens[n].text) {
            out.push(Finding::new(
                t.line,
                format!(
                    "`as {}` cast in a binary-format module; use From/TryFrom",
                    tokens[n].text
                ),
            ));
        }
    }
    out
}

/// L4 `wallclock`: flags `Instant::now` / `SystemTime::now` outside the
/// designated clock modules.
pub fn wallclock(tokens: &[Token], skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text != "Instant" && t.text != "SystemTime" {
            continue;
        }
        let Some(c1) = next_code(tokens, i + 1) else {
            continue;
        };
        let Some(c2) = next_code(tokens, c1 + 1) else {
            continue;
        };
        let Some(m) = next_code(tokens, c2 + 1) else {
            continue;
        };
        if tokens[c1].is_punct(':') && tokens[c2].is_punct(':') && tokens[m].is_ident("now") {
            out.push(Finding::new(
                t.line,
                format!(
                    "{}::now() outside a clock module; take time through stream::clock",
                    t.text
                ),
            ));
        }
    }
    out
}

/// A lock guard known to be live: the variable it is bound to (None for
/// an unbound temporary that we still track until end of statement), the
/// lock field it came from, and the brace depth it was bound at.
struct Guard {
    var: Option<String>,
    lock: String,
    depth: usize,
}

/// L5 `lock_order`: flags an acquisition of one lock while a guard from a
/// *different* lock is held, unless the `held -> acquired` pair is vetted
/// in the lock-order manifest.
///
/// Heuristics, tuned for this workspace:
/// - Only `.read()`, `.write()`, and `.lock()` calls with *empty*
///   argument lists count as acquisitions (this filters `io::Read::read`
///   and `io::Write::write`, which always take a buffer).
/// - The lock name is the field identifier before the final dot
///   (`shared.state.read()` → `state`). Calls whose receiver ends in
///   something other than an identifier (e.g. `f().lock()`) are skipped —
///   name them through a let binding to bring them under the lint.
/// - A `let g = <acq>` binding keeps the guard live until its brace scope
///   closes or `drop(g)` is seen; an unbound acquisition is live only to
///   the end of the statement (`;`).
pub fn lock_order(tokens: &[Token], skip: &[bool], manifest: &Manifest) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            // Statement end: unbound temporaries die here.
            held.retain(|g| g.var.is_some());
            i += 1;
            continue;
        }
        // drop(guard) releases.
        if t.is_ident("drop") {
            if let Some(p1) = next_code(tokens, i + 1) {
                if tokens[p1].is_punct('(') {
                    if let Some(a) = next_code(tokens, p1 + 1) {
                        if tokens[a].kind == TokenKind::Ident {
                            if let Some(close) = next_code(tokens, a + 1) {
                                if tokens[close].is_punct(')') {
                                    let name = tokens[a].text;
                                    held.retain(|g| g.var.as_deref() != Some(name));
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        // Acquisition: Ident(lock) . (read|write|lock) ( )
        let is_acq_method = t.kind == TokenKind::Ident
            && matches!(t.text, "read" | "write" | "lock")
            && prev_code(tokens, i).is_some_and(|p| tokens[p].is_punct('.'));
        if is_acq_method {
            let open = next_code(tokens, i + 1);
            let close = open.and_then(|o| next_code(tokens, o + 1));
            let empty_call = matches!((open, close), (Some(o), Some(c))
                if tokens[o].is_punct('(') && tokens[c].is_punct(')'));
            if empty_call {
                // Name the lock: identifier before the final dot.
                let dot = prev_code(tokens, i).unwrap_or(0);
                let recv = prev_code(tokens, dot);
                if let Some(r) = recv {
                    if tokens[r].kind == TokenKind::Ident && tokens[r].text != "self" {
                        let lock = tokens[r].text.to_string();
                        if !skip[i] {
                            for g in &held {
                                if g.lock != lock && !manifest.allows(&g.lock, &lock) {
                                    out.push(Finding {
                                        line: t.line,
                                        message: format!(
                                            "acquired lock `{lock}` while holding `{}`; \
                                             vet the order in lock-order.manifest",
                                            g.lock
                                        ),
                                        pair: Some((g.lock.clone(), lock.clone())),
                                    });
                                }
                            }
                        }
                        // Bound to a let? Walk left over the receiver chain.
                        let mut b = r;
                        while let Some(p) = prev_code(tokens, b) {
                            if tokens[p].is_punct('.') {
                                if let Some(pp) = prev_code(tokens, p) {
                                    if tokens[pp].kind == TokenKind::Ident {
                                        b = pp;
                                        continue;
                                    }
                                }
                            }
                            break;
                        }
                        let var = prev_code(tokens, b).and_then(|eq| {
                            if !tokens[eq].is_punct('=') {
                                return None;
                            }
                            let v = prev_code(tokens, eq)?;
                            if tokens[v].kind != TokenKind::Ident {
                                return None;
                            }
                            let kw = prev_code(tokens, v)?;
                            let is_let = tokens[kw].is_ident("let")
                                || (tokens[kw].is_ident("mut")
                                    && prev_code(tokens, kw)
                                        .is_some_and(|k| tokens[k].is_ident("let")));
                            is_let.then(|| tokens[v].text.to_string())
                        });
                        held.push(Guard { var, lock, depth });
                        i = close.map(|c| c + 1).unwrap_or(i + 1);
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run<F>(src: &str, f: F) -> Vec<Finding>
    where
        F: Fn(&[Token], &[bool]) -> Vec<Finding>,
    {
        let toks = lex(src);
        let skip = vec![false; toks.len()];
        f(&toks, &skip)
    }

    #[test]
    fn no_panic_catches_method_calls_only() {
        let f = run(
            "fn f() { x.unwrap(); let unwrap = 1; y.expect(\"m\"); }",
            no_panic,
        );
        assert_eq!(f.len(), 2);
        let f = run("fn f() { panic!(\"boom\"); todo!() }", no_panic);
        assert_eq!(f.len(), 2);
        // Words inside strings/comments never fire.
        let f = run("// call .unwrap() here\nlet s = \".unwrap()\";", no_panic);
        assert!(f.is_empty());
    }

    #[test]
    fn safety_comment_above_or_inside() {
        assert_eq!(run("fn f() { unsafe { g() } }", safety_comment).len(), 1);
        // A SAFETY comment on the enclosing fn is not adjacent to the block.
        assert_eq!(
            run(
                "// SAFETY: g is fine\nfn f() { unsafe { g() } }",
                safety_comment
            )
            .len(),
            1
        );
        assert!(run(
            "fn f() {\n  // SAFETY: g is fine\n  unsafe { g() } }",
            safety_comment
        )
        .is_empty());
        // The statement form: comment above `let x = unsafe { ... }`.
        assert!(run(
            "fn f() {\n  // SAFETY: g is fine\n  let x = unsafe { g() };\n}",
            safety_comment
        )
        .is_empty());
        // ...but a SAFETY comment before the *previous* statement does
        // not leak forward across the `;`.
        assert_eq!(
            run(
                "fn f() {\n  // SAFETY: stale\n  let a = 1;\n  let x = unsafe { g() };\n}",
                safety_comment
            )
            .len(),
            1
        );
        assert!(run(
            "fn f() { unsafe { // SAFETY: g is fine\n g() } }",
            safety_comment
        )
        .is_empty());
        // `unsafe fn` signature alone is not a block.
        assert!(run("unsafe fn f() {}", safety_comment).is_empty());
    }

    #[test]
    fn truncation_flags_int_casts() {
        let f = run(
            "let x = y as u32; let z = w as f64; use a as b;",
            truncation,
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("u32"));
    }

    #[test]
    fn wallclock_matches_path_calls() {
        let f = run(
            "let t = Instant::now(); let s = std::time::SystemTime::now();",
            wallclock,
        );
        assert_eq!(f.len(), 2);
        assert!(run("let d = Instant::elapsed(&t);", wallclock).is_empty());
    }

    fn run_l5(src: &str, manifest: &str) -> Vec<Finding> {
        let toks = lex(src);
        let skip = vec![false; toks.len()];
        lock_order(&toks, &skip, &Manifest::parse(manifest))
    }

    #[test]
    fn lock_order_flags_unvetted_nesting() {
        let src = "fn f(s: &S) { let a = s.state.write(); let b = s.storage.lock(); }";
        assert_eq!(run_l5(src, "").len(), 1);
        assert!(run_l5(src, "state -> storage").is_empty());
        // Reverse order is not vetted by the forward edge.
        let rev = "fn f(s: &S) { let b = s.storage.lock(); let a = s.state.write(); }";
        assert_eq!(run_l5(rev, "state -> storage").len(), 1);
    }

    #[test]
    fn lock_order_scope_and_drop_release() {
        let scoped = "fn f(s: &S) { { let a = s.state.write(); } let b = s.storage.lock(); }";
        assert!(run_l5(scoped, "").is_empty());
        let dropped = "fn f(s: &S) { let a = s.state.write(); drop(a); let b = s.storage.lock(); }";
        assert!(run_l5(dropped, "").is_empty());
    }

    #[test]
    fn lock_order_ignores_buffered_io_reads() {
        let src = "fn f(r: &mut R, buf: &mut [u8]) { let g = s.state.read(); r.read(buf); }";
        assert!(run_l5(src, "").is_empty());
    }

    #[test]
    fn lock_order_temporary_dies_at_statement_end() {
        let src = "fn f(s: &S) { s.state.read().len(); let b = s.storage.lock(); }";
        assert!(run_l5(src, "").is_empty());
        // ...but two temporaries in one statement do nest.
        let nested = "fn f(s: &S) { g(s.state.read(), s.storage.lock()); }";
        assert_eq!(run_l5(nested, "").len(), 1);
    }
}
