//! A hand-rolled Rust lexer, sufficient for the repo's lint rules.
//!
//! The workspace cannot take `syn`/`proc-macro2` (no external deps), so
//! the lint engine works from a flat token stream instead of a syntax
//! tree. The lexer understands everything that can *hide* tokens from a
//! naive text scan — line and (nested) block comments, string/char/byte
//! literals, raw strings with arbitrary `#` fences, and lifetimes — so a
//! rule that looks for `.unwrap()` never fires on the word "unwrap"
//! inside a doc comment or a string literal.
//!
//! Comments are kept as tokens (with their text and line) because two
//! rules read them: `safety_comment` looks for `// SAFETY:` above an
//! `unsafe` block, and every rule honours the `// lint:allow(<rule>)`
//! escape hatch.

/// What a token is. The lexer is lossless enough for linting: every
/// character of input lands in exactly one token or in whitespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `let`, ...).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// A single punctuation character (`.`, `(`, `{`, `=`, ...).
    Punct,
    /// `// ...` comment (text includes the slashes).
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
}

/// One lexed token: kind, the source slice, and the 1-based line where it
/// starts.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl<'a> Token<'a> {
    /// True for a punctuation token matching `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Unterminated constructs (string/comment) are
/// closed at end of input rather than reported — the lint engine is not a
/// compiler; rustc will reject such files anyway.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Number of newlines inside src[from..to].
    let count_lines = |from: usize, to: usize| -> u32 {
        let mut n = 0;
        let mut k = from;
        while k < to {
            if bytes[k] == b'\n' {
                n += 1;
            }
            k += 1;
        }
        n
    };

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let start_line = line;
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(start, i);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'"' => {
                i = scan_string(bytes, i + 1);
                line += count_lines(start, i);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                i = scan_raw_or_byte(bytes, i);
                line += count_lines(start, i);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal. A lifetime is `'` + ident not
                // closed by another `'` (so `'a'` is a char, `'a` is a
                // lifetime, `'\n'` is a char).
                let mut j = i + 1;
                if j < bytes.len() && bytes[j] != b'\\' && is_ident_start(bytes[j]) {
                    let mut k = j + 1;
                    while k < bytes.len() && is_ident_continue(bytes[k]) {
                        k += 1;
                    }
                    if bytes.get(k) != Some(&b'\'') {
                        // Lifetime.
                        tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: &src[i..k],
                            line: start_line,
                        });
                        i = k;
                        continue;
                    }
                }
                // Char literal: scan to the closing quote, honouring escapes.
                if j < bytes.len() && bytes[j] == b'\\' {
                    j += 2; // skip the escaped character
                            // Multi-char escapes (\u{...}, \x41) end at the quote.
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                } else {
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                }
                i = (j + 1).min(bytes.len());
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'0'..=b'9' => {
                i += 1;
                while i < bytes.len() && (is_ident_continue(bytes[i]) || bytes[i] == b'.') {
                    // `1..10` — the range dots are punctuation, not part of
                    // the number. Likewise `self.0.load(..)` — a dot
                    // followed by an identifier is a method/field access
                    // on the number, not a fractional part.
                    if bytes[i] == b'.'
                        && bytes
                            .get(i + 1)
                            .is_some_and(|&b| b == b'.' || is_ident_start(b))
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            _ if is_ident_start(b) => {
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            _ => {
                // One punctuation character (multi-byte UTF-8 handled by
                // advancing to the next char boundary).
                let mut end = i + 1;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: &src[i..end],
                    line: start_line,
                });
                i = end;
            }
        }
    }
    tokens
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans past a normal `"..."` string body; `i` points just after the
/// opening quote. Returns the index just past the closing quote.
fn scan_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// True when `i` starts `r"`, `r#`, `b"`, `b'`, `br"`, `br#`, `rb...`.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let next = |k: usize| bytes.get(i + k).copied();
    match bytes[i] {
        b'r' => matches!(next(1), Some(b'"') | Some(b'#')),
        b'b' => match next(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(next(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans a raw/byte string starting at its prefix. Returns the index just
/// past the closing delimiter.
fn scan_raw_or_byte(bytes: &[u8], mut i: usize) -> usize {
    // Skip the prefix letters.
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // Byte char literal b'x'.
        let mut j = i + 1;
        if bytes.get(j) == Some(&b'\\') {
            j += 2;
        }
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j + 1).min(bytes.len());
    }
    // Count the `#` fence.
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // not actually a string; treat prefix as consumed
    }
    i += 1;
    if hashes == 0 {
        // Raw string without fence: ends at the next quote, no escapes.
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    // Ends at `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ts = kinds("let x = a.unwrap();");
        assert_eq!(ts[0], (TokenKind::Ident, "let".into()));
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
        assert_eq!(ts[2], (TokenKind::Punct, "=".into()));
        assert!(ts.iter().any(|t| t == &(TokenKind::Ident, "unwrap".into())));
    }

    #[test]
    fn strings_hide_their_contents() {
        let ts = kinds(r#"let s = "call .unwrap() please";"#);
        assert!(!ts
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "unwrap"));
        assert!(ts
            .iter()
            .any(|t| t.0 == TokenKind::Literal && t.1.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r##"let s = r#"quote " inside"#; x"##;
        let ts = kinds(src);
        assert!(ts
            .iter()
            .any(|t| t.0 == TokenKind::Literal && t.1.starts_with("r#")));
        assert_eq!(ts.last().map(|t| t.1.as_str()), Some("x"));
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let src = "// SAFETY: fine\nunsafe { body() }\n/* block\ncomment */ y";
        let ts = lex(src);
        assert_eq!(ts[0].kind, TokenKind::LineComment);
        assert_eq!(ts[0].line, 1);
        assert!(ts.iter().any(|t| t.is_ident("unsafe") && t.line == 2));
        let block = ts
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .unwrap();
        assert_eq!(block.line, 3);
        let y = ts.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* a /* b */ c */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(ts.iter().any(|t| t.0 == TokenKind::Lifetime && t.1 == "'a"));
        assert!(ts.iter().any(|t| t.0 == TokenKind::Literal && t.1 == "'x'"));
        assert!(ts
            .iter()
            .any(|t| t.0 == TokenKind::Literal && t.1 == "'\\n'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let ts = kinds("for i in 0..10 { a[i] = 1.5e3; }");
        assert!(ts.iter().any(|t| t.0 == TokenKind::Number && t.1 == "0"));
        assert!(ts.iter().any(|t| t.0 == TokenKind::Number && t.1 == "10"));
        assert!(ts
            .iter()
            .any(|t| t.0 == TokenKind::Number && t.1 == "1.5e3"));
    }

    #[test]
    fn byte_strings() {
        let ts = kinds(r#"let b = b"DSNP"; let c = b'x';"#);
        assert!(ts
            .iter()
            .any(|t| t.0 == TokenKind::Literal && t.1 == "b\"DSNP\""));
        assert!(ts
            .iter()
            .any(|t| t.0 == TokenKind::Literal && t.1 == "b'x'"));
    }
}
