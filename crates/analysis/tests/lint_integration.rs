//! Integration tests for the lint engine and the `datacron-lint` binary.
//!
//! Each rule L1–L9 has a positive fixture (must fire) and a negative
//! fixture (must stay silent) under `tests/fixtures/`; the workspace walk
//! skips that directory, so the deliberate violations never gate CI.
//! L9 needs two crates, so its fixtures are fed through `lint_sources`
//! with crate-shaped paths instead of the single-file strict mode.

use datacron_analysis::{Engine, Manifest, NameManifest, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    crate_dir().join("../..")
}

fn manifest() -> Manifest {
    Manifest::load(&crate_dir().join("lock-order.manifest")).expect("manifest readable")
}

fn lint_fixture(name: &str) -> Vec<datacron_analysis::Diagnostic> {
    let engine = Engine::strict(manifest());
    engine
        .lint_file(&crate_dir().join("tests/fixtures"), name)
        .expect("fixture readable")
}

fn rules_fired(name: &str) -> Vec<Rule> {
    let mut rules: Vec<Rule> = lint_fixture(name).into_iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn positive_fixtures_fire_their_rule() {
    for (fixture, rule) in [
        ("l1_no_panic_bad.rs", Rule::NoPanic),
        ("l2_safety_comment_bad.rs", Rule::SafetyComment),
        ("l3_truncation_bad.rs", Rule::Truncation),
        ("l4_wallclock_bad.rs", Rule::Wallclock),
        ("l5_lock_order_bad.rs", Rule::LockOrder),
        ("l6_reactor_blocking_bad.rs", Rule::ReactorBlocking),
        ("l7_ffi_retcheck_bad.rs", Rule::FfiRetcheck),
        ("l8_atomic_audit_bad.rs", Rule::AtomicAudit),
    ] {
        assert!(
            rules_fired(fixture).contains(&rule),
            "{fixture} must trigger {}",
            rule.name()
        );
    }
}

#[test]
fn negative_fixtures_stay_silent() {
    for fixture in [
        "l1_no_panic_ok.rs",
        "l2_safety_comment_ok.rs",
        "l3_truncation_ok.rs",
        "l4_wallclock_ok.rs",
        "l5_lock_order_ok.rs",
        "l6_reactor_blocking_ok.rs",
        "l7_ffi_retcheck_ok.rs",
        "l8_atomic_audit_ok.rs",
    ] {
        let diags = lint_fixture(fixture);
        assert!(
            diags.is_empty(),
            "{fixture} must be clean, got: {}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn violation_counts_per_positive_fixture() {
    // L1: unwrap + expect + panic! + todo! = 4 findings.
    assert_eq!(lint_fixture("l1_no_panic_bad.rs").len(), 4);
    // L3: three silent casts.
    assert_eq!(lint_fixture("l3_truncation_bad.rs").len(), 3);
    // L4: Instant::now + SystemTime::now.
    assert_eq!(lint_fixture("l4_wallclock_bad.rs").len(), 2);
}

#[test]
fn allow_suppresses_exactly_its_rule() {
    let diags = lint_fixture("allow_scoped.rs");
    // First unwrap carries lint:allow(no_panic) — silenced. Second
    // carries lint:allow(truncation) — wrong rule, still fires.
    assert_eq!(diags.len(), 1, "exactly the mismatched allow must fire");
    assert_eq!(diags[0].rule, Rule::NoPanic);
    assert_eq!(diags[0].line, 9);
}

#[test]
fn diagnostics_carry_file_and_line() {
    let diags = lint_fixture("l1_no_panic_bad.rs");
    let first = &diags[0];
    assert_eq!(first.path, "l1_no_panic_bad.rs");
    assert_eq!(first.line, 4);
    let shown = first.to_string();
    assert!(
        shown.starts_with("l1_no_panic_bad.rs:4: [no_panic]"),
        "display format: {shown}"
    );
}

#[test]
fn lock_order_diagnostic_names_the_pair() {
    let diags = lint_fixture("l5_lock_order_bad.rs");
    let d = diags.iter().find(|d| d.rule == Rule::LockOrder).unwrap();
    assert_eq!(
        d.pair.as_ref().map(|(h, a)| (h.as_str(), a.as_str())),
        Some(("zebra", "aardvark"))
    );
}

/// Reads an L9 fixture pair mapped into two different workspace crates.
fn l9_sources(caller: &str) -> Vec<(String, String)> {
    let fixtures = crate_dir().join("tests/fixtures");
    let read = |n: &str| std::fs::read_to_string(fixtures.join(n)).expect("fixture readable");
    vec![
        ("crates/server/src/persist.rs".to_string(), read(caller)),
        (
            "crates/storage/src/records.rs".to_string(),
            read("l9_lock_across_call_callee.rs"),
        ),
    ]
}

#[test]
fn lock_across_call_fires_and_manifest_vets_it() {
    // Unvetted: the live guard crossing into datacron-storage fires.
    let engine = Engine::strict(Manifest::parse(""));
    let diags = engine.lint_sources(&l9_sources("l9_lock_across_call_bad.rs"));
    let d = diags
        .iter()
        .find(|d| d.rule == Rule::LockAcrossCall)
        .expect("L9 must fire on the unvetted pair");
    assert_eq!(d.path, "crates/server/src/persist.rs");
    assert_eq!(
        d.pair.as_ref().map(|(h, a)| (h.as_str(), a.as_str())),
        Some(("storage", "crate:datacron-storage"))
    );

    // Vetted pair: same sources, manifest carries the edge — silent.
    let vetted = Manifest::parse("storage -> crate:datacron-storage # wal append is the design\n");
    let engine = Engine::strict(vetted);
    let diags = engine.lint_sources(&l9_sources("l9_lock_across_call_bad.rs"));
    assert!(
        !diags.iter().any(|d| d.rule == Rule::LockAcrossCall),
        "vetted pair must not fire"
    );

    // Guard dropped before the call: nothing to vet.
    let engine = Engine::strict(Manifest::parse(""));
    let diags = engine.lint_sources(&l9_sources("l9_lock_across_call_ok.rs"));
    assert!(
        !diags.iter().any(|d| d.rule == Rule::LockAcrossCall),
        "released guard must not fire"
    );
}

#[test]
fn reactor_allow_manifest_prunes_the_handback_subtree() {
    let fixtures = crate_dir().join("tests/fixtures");
    let src =
        std::fs::read_to_string(fixtures.join("l6_reactor_blocking_bad.rs")).expect("fixture");
    let allow = NameManifest::parse("load_config # runs on the flush thread, not the loop\n");
    let engine =
        Engine::strict(Manifest::parse("")).with_name_manifests(NameManifest::default(), allow);
    let diags = engine.lint_sources(&[("l6_reactor_blocking_bad.rs".to_string(), src)]);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::ReactorBlocking),
        "vetted handback must prune the blocking subtree"
    );
}

#[test]
fn atomic_manifest_vets_named_atomics() {
    let fixtures = crate_dir().join("tests/fixtures");
    let src = std::fs::read_to_string(fixtures.join("l8_atomic_audit_bad.rs")).expect("fixture");
    let atomics = NameManifest::parse("probe_hits # stats only, summed after join\n");
    let engine =
        Engine::strict(Manifest::parse("")).with_name_manifests(atomics, NameManifest::default());
    let diags = engine.lint_sources(&[("l8_atomic_audit_bad.rs".to_string(), src.clone())]);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::AtomicAudit),
        "manifest-vetted atomic must not fire"
    );

    // An entry without a justification vets nothing.
    let bare = NameManifest::parse("probe_hits\n");
    let engine =
        Engine::strict(Manifest::parse("")).with_name_manifests(bare, NameManifest::default());
    let diags = engine.lint_sources(&[("l8_atomic_audit_bad.rs".to_string(), src)]);
    assert!(
        diags.iter().any(|d| d.rule == Rule::AtomicAudit),
        "justification-free entry must be ignored"
    );
}

fn name_manifests() -> (NameManifest, NameManifest) {
    let atomics =
        NameManifest::load(&crate_dir().join("atomic-ordering.manifest")).expect("atomics");
    let reactor =
        NameManifest::load(&crate_dir().join("reactor-allow.manifest")).expect("reactor allow");
    (atomics, reactor)
}

#[test]
fn workspace_is_lint_clean() {
    let (atomics, reactor) = name_manifests();
    let engine = Engine::workspace(manifest()).with_name_manifests(atomics, reactor);
    let diags = engine
        .lint_workspace(&workspace_root())
        .expect("workspace readable");
    assert!(
        diags.is_empty(),
        "workspace must be lint-clean, got:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn run_lint(args: &[&str], cwd: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_datacron-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let (code, text) = run_lint(&[], &workspace_root());
    assert_eq!(code, 0, "clean workspace must exit 0:\n{text}");
    assert!(text.contains("datacron-lint: clean"), "summary: {text}");
}

#[test]
fn binary_exits_nonzero_with_located_diagnostics_on_fixtures() {
    let fixtures = crate_dir().join("tests/fixtures");
    for (fixture, rule, line) in [
        ("l1_no_panic_bad.rs", "no_panic", 4),
        ("l2_safety_comment_bad.rs", "safety_comment", 4),
        ("l3_truncation_bad.rs", "truncation", 4),
        ("l4_wallclock_bad.rs", "wallclock", 3),
        ("l5_lock_order_bad.rs", "lock_order", 9),
        ("l6_reactor_blocking_bad.rs", "reactor_blocking", 16),
        ("l7_ffi_retcheck_bad.rs", "ffi_retcheck", 13),
        ("l8_atomic_audit_bad.rs", "atomic_audit", 6),
    ] {
        let (code, text) = run_lint(&[fixture], &fixtures);
        assert_eq!(code, 1, "{fixture} must exit 1:\n{text}");
        let needle = format!("{fixture}:{line}: [{rule}]");
        assert!(text.contains(&needle), "want `{needle}` in:\n{text}");
    }
}

#[test]
fn binary_fix_manifest_vets_the_reported_pair() {
    let tmp = std::env::temp_dir().join(format!("lint-manifest-{}", std::process::id()));
    std::fs::write(&tmp, "state -> storage\n").unwrap();
    let fixtures = crate_dir().join("tests/fixtures");
    let tmp_s = tmp.to_string_lossy().into_owned();

    // Without --fix-manifest the unvetted pair fails the run…
    let (code, _) = run_lint(&["--manifest", &tmp_s, "l5_lock_order_bad.rs"], &fixtures);
    assert_eq!(code, 1);

    // …with it, the pair is appended and the run passes.
    let (code, text) = run_lint(
        &[
            "--manifest",
            &tmp_s,
            "--fix-manifest",
            "l5_lock_order_bad.rs",
        ],
        &fixtures,
    );
    assert_eq!(code, 0, "fix-manifest run must pass:\n{text}");
    let vetted = std::fs::read_to_string(&tmp).unwrap();
    assert!(vetted.contains("zebra -> aardvark"), "manifest: {vetted}");

    // The vetted manifest now passes without --fix-manifest too.
    let (code, _) = run_lint(&["--manifest", &tmp_s, "l5_lock_order_bad.rs"], &fixtures);
    assert_eq!(code, 0);
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn binary_baseline_round_trip_suppresses_known_findings() {
    let fixtures = crate_dir().join("tests/fixtures");
    let tmp = std::env::temp_dir().join(format!("lint-baseline-{}", std::process::id()));
    let tmp_s = tmp.to_string_lossy().into_owned();

    // Recording the debt exits 0 even though findings exist…
    let (code, text) = run_lint(
        &["--write-baseline", &tmp_s, "l1_no_panic_bad.rs"],
        &fixtures,
    );
    assert_eq!(code, 0, "write-baseline must exit 0:\n{text}");
    let recorded = std::fs::read_to_string(&tmp).unwrap();
    assert!(
        recorded.contains("l1_no_panic_bad.rs:4:no_panic"),
        "baseline keys are path:line:rule: {recorded}"
    );

    // …and replaying it suppresses exactly those findings.
    let (code, text) = run_lint(&["--baseline", &tmp_s, "l1_no_panic_bad.rs"], &fixtures);
    assert_eq!(code, 0, "baselined findings must not gate:\n{text}");
    assert!(text.contains("datacron-lint: clean"), "summary: {text}");

    // A fresh violation not in the baseline still fails the run.
    let (code, _) = run_lint(
        &[
            "--baseline",
            &tmp_s,
            "l1_no_panic_bad.rs",
            "l8_atomic_audit_bad.rs",
        ],
        &fixtures,
    );
    assert_eq!(code, 1, "unbaselined findings must still gate");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn binary_json_format_emits_located_records_with_fix_hints() {
    let fixtures = crate_dir().join("tests/fixtures");
    let (code, text) = run_lint(&["--format", "json", "l8_atomic_audit_bad.rs"], &fixtures);
    assert_eq!(code, 1, "violations still set the exit code in json mode");
    let json = text.trim();
    assert!(
        json.starts_with('[') && json.ends_with(']'),
        "array: {json}"
    );
    assert!(json.contains("\"rule\":\"L8\""), "rule id: {json}");
    assert!(
        json.contains("\"name\":\"atomic_audit\""),
        "rule name: {json}"
    );
    assert!(
        json.contains("\"path\":\"l8_atomic_audit_bad.rs\"") && json.contains("\"line\":6"),
        "location: {json}"
    );
    assert!(json.contains("\"fix\":\""), "fix hint present: {json}");

    // A clean file yields an empty array and exit 0.
    let (code, text) = run_lint(&["--format", "json", "l8_atomic_audit_ok.rs"], &fixtures);
    assert_eq!(code, 0);
    assert_eq!(text.trim(), "[]");
}

#[test]
fn binary_explains_every_rule() {
    for rule in Rule::ALL {
        for key in [rule.id(), rule.name()] {
            let (code, text) = run_lint(&["--explain", key], &workspace_root());
            assert_eq!(code, 0, "--explain {key} must succeed:\n{text}");
            assert!(
                text.contains(rule.name()) && text.len() > 60,
                "--explain {key} must describe the rule:\n{text}"
            );
        }
    }
}
