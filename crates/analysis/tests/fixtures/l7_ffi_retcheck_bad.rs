// Fixture: L7 ffi_retcheck violation — the `close` return value is
// discarded in statement position inside an unsafe wrapper.
use std::os::raw::c_int;

// SAFETY: the declaration matches the C prototype std already links.
unsafe extern "C" {
    fn close(fd: c_int) -> c_int;
}

pub fn drop_fd(fd: c_int) {
    // SAFETY: `fd` is a valid fd owned by the caller, closed once.
    unsafe {
        close(fd);
    }
}
