// Fixture: L9 lock_across_call violation — a guard stays live across a
// call into another workspace crate. Linted via `lint_sources` with a
// `crates/server/...` path alongside `l9_lock_across_call_callee.rs`
// mapped into `crates/storage/...`.
use std::sync::Mutex;

pub fn persist(storage: &Mutex<u32>) {
    let guard = storage.lock();
    datacron_storage::append_record(7);
    drop(guard);
}
