// Fixture: L6 reactor_blocking violation — file I/O reachable from the
// reactor entry point through a two-hop call chain.
pub struct Reactor;

impl Reactor {
    pub fn run(&self) {
        self.poll_once();
    }

    fn poll_once(&self) {
        load_config();
    }
}

fn load_config() {
    let _ = std::fs::read_to_string("config.toml");
}
