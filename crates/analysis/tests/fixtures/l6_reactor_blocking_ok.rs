// Fixture: L6 negative — the reactor only does nonblocking work; the
// blocking helper exists but is never reachable from a loop entry.
pub struct Reactor;

impl Reactor {
    pub fn run(&self) {
        enqueue(1);
    }
}

fn enqueue(_job: u32) {}

fn offline_compaction() {
    let _ = std::fs::read_to_string("segments.idx");
}
