// Fixture: L7 negative — every syscall result is bound and checked.
use std::os::raw::c_int;

// SAFETY: the declaration matches the C prototype std already links.
unsafe extern "C" {
    fn close(fd: c_int) -> c_int;
}

pub fn drop_fd(fd: c_int) -> bool {
    // SAFETY: `fd` is a valid fd owned by the caller, closed once.
    let rc = unsafe { close(fd) };
    rc == 0
}
