// Fixture: the storage-side callee for the L9 pair; linted with a
// `crates/storage/...` path so the call above crosses crates.
pub fn append_record(_record: u32) {}
