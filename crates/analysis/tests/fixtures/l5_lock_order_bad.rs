// Fixture: L5 lock_order violation — nested acquisition not in the
// manifest (`zebra -> aardvark` is deliberately unvetted).
use std::sync::Mutex;

fn main() {
    let zebra = Mutex::new(1u32);
    let aardvark = Mutex::new(2u32);
    let g1 = zebra.lock();
    let g2 = aardvark.lock();
    drop(g2);
    drop(g1);
}
