// Fixture: L3 truncation violations — silent `as` integer casts.
fn main() {
    let big: u64 = 5_000_000_000;
    let a = big as u32;
    let b = big as usize;
    let c = -1i64 as u8;
    let _ = (a, b, c);
}
