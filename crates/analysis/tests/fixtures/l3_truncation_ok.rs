// Fixture: checked or infallible conversions instead of `as`.
fn main() {
    let big: u64 = 5_000_000_000;
    let a = u32::try_from(big).unwrap_or(u32::MAX);
    let b = usize::try_from(big).unwrap_or(usize::MAX);
    let c = u64::from(a);
    let _ = (a, b, c);
}
