// Fixture: no L1 violations — typed error paths only.
fn main() -> Result<(), String> {
    let v: Option<u32> = Some(1);
    let x = v.ok_or_else(|| "missing".to_string())?;
    // Words like unwrap_or are not violations.
    let _ = v.unwrap_or(0);
    let _ = v.unwrap_or_else(|| x);
    Ok(())
}
