// Fixture: L4 wallclock violations — direct clock reads.
fn main() {
    let t = std::time::Instant::now();
    let w = std::time::SystemTime::now();
    let _ = (t, w);
}
