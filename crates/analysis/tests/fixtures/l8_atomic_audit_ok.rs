// Fixture: L8 negative — the Relaxed access carries its justification.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(probe_hits: &AtomicU64) {
    // ordering: pure statistic; no data is published through it.
    probe_hits.fetch_add(1, Ordering::Relaxed);
}

pub fn snapshot(probe_hits: &AtomicU64) -> u64 {
    probe_hits.load(Ordering::Relaxed) // ordering: stale reads acceptable
}
