// Fixture: time flows through the clock abstraction, not raw reads.
struct Stopwatch;
impl Stopwatch {
    fn start() -> Self {
        Stopwatch
    }
    fn elapsed_us(&self) -> u64 {
        0
    }
}
fn main() {
    let sw = Stopwatch::start();
    let _ = sw.elapsed_us();
}
