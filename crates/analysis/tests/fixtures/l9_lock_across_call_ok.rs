// Fixture: L9 negative — the guard is released before the cross-crate
// call, so no critical section spans the crate boundary.
use std::sync::Mutex;

pub fn persist(storage: &Mutex<u32>) {
    let guard = storage.lock();
    drop(guard);
    datacron_storage::append_record(7);
}
