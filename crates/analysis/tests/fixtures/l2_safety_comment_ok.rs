// Fixture: unsafe block properly documented.
fn main() {
    let bytes = [104u8, 105u8];
    // SAFETY: `bytes` is ASCII by construction, hence valid UTF-8.
    let s = unsafe { std::str::from_utf8_unchecked(&bytes) };
    let _ = s;
}
