// Fixture: no nested acquisition — the first guard is dropped before
// the second lock is taken.
use std::sync::Mutex;

fn main() {
    let zebra = Mutex::new(1u32);
    let aardvark = Mutex::new(2u32);
    let g1 = zebra.lock();
    drop(g1);
    let g2 = aardvark.lock();
    drop(g2);
}
