// Fixture: L2 safety_comment violation — unsafe block with no SAFETY note.
fn main() {
    let bytes = [104u8, 105u8];
    let s = unsafe { std::str::from_utf8_unchecked(&bytes) };
    let _ = s;
}
