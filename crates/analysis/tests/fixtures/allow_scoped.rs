// Fixture: `lint:allow` is rule-scoped. The first unwrap is allowed for
// no_panic and must not fire; the second carries an allow for a
// *different* rule and must still fire.
fn main() {
    let v: Option<u32> = Some(1);
    // lint:allow(no_panic) fixture exercises the escape hatch
    let _ = v.unwrap();
    // lint:allow(truncation) wrong rule: does not cover unwrap
    let _ = v.unwrap();
}
