// Fixture: L1 no_panic violations (deliberate).
fn main() {
    let v: Option<u32> = None;
    let _ = v.unwrap();
    let _ = v.expect("boom");
    panic!("explicit panic");
    todo!();
}
