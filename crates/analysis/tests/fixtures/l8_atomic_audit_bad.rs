// Fixture: L8 atomic_audit violation — a Relaxed access with neither an
// `// ordering:` justification nor a manifest entry.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(probe_hits: &AtomicU64) {
    probe_hits.fetch_add(1, Ordering::Relaxed);
}
