//! Property-based tests for the in-situ processing component.

use datacron_geo::{GeoPoint, TimeMs};
use datacron_model::{NavStatus, ObjectId, PositionReport, TrajPoint};
use datacron_synopses::{
    compression_ratio, douglas_peucker, sed_error, CriticalPointDetector, DeadReckoningCompressor,
    SynopsisConfig,
};
use proptest::prelude::*;

/// A random but kinematically coherent track: piecewise-constant heading
/// and speed legs sampled every 10 s.
fn arb_track() -> impl Strategy<Value = Vec<PositionReport>> {
    let leg = (0.0f64..360.0, 0.5f64..12.0, 3usize..20);
    (
        (20.0f64..28.0, 35.0f64..40.0),
        prop::collection::vec(leg, 1..6),
    )
        .prop_map(|((lon, lat), legs)| {
            let mut pos = GeoPoint::new(lon, lat);
            let mut t = 0i64;
            let mut out = Vec::new();
            for (heading, speed, steps) in legs {
                for _ in 0..steps {
                    out.push(PositionReport::maritime(
                        ObjectId(1),
                        TimeMs(t),
                        pos,
                        speed,
                        heading,
                        datacron_model::SourceId::AIS_TERRESTRIAL,
                        NavStatus::UnderWay,
                    ));
                    pos = pos.destination(heading, speed * 10.0);
                    t += 10_000;
                }
            }
            out
        })
}

proptest! {
    /// The defining invariant of dead-reckoning compression: every *dropped*
    /// report lies within the threshold of the prediction made from the last
    /// kept report.
    #[test]
    fn dropped_reports_within_threshold_of_prediction(
        track in arb_track(),
        threshold in 20.0f64..500.0,
    ) {
        let mut c = DeadReckoningCompressor::new(threshold);
        let mut last_kept: Option<PositionReport> = None;
        for r in &track {
            if c.check(r) {
                last_kept = Some(*r);
            } else {
                let k = last_kept.expect("first report is always kept");
                let dt_s = (r.time - k.time) as f64 / 1000.0;
                let predicted = k.position().destination(k.heading_deg, k.speed_mps * dt_s);
                let dev = predicted.haversine_m(&r.position());
                prop_assert!(dev <= threshold + 1e-6, "deviation {dev} > {threshold}");
            }
        }
    }

    #[test]
    fn first_report_always_kept_and_ratio_in_range(track in arb_track()) {
        let mut c = DeadReckoningCompressor::new(100.0);
        let kept = c.compress_batch(&track);
        prop_assert!(!kept.is_empty());
        prop_assert_eq!(kept[0], track[0]);
        prop_assert!((0.0..=1.0).contains(&c.ratio()));
        prop_assert_eq!(c.seen() as usize, track.len());
        prop_assert_eq!(c.kept() as usize, kept.len());
    }

    /// Douglas–Peucker's error bound: every dropped vertex is within epsilon
    /// of the simplified polyline.
    #[test]
    fn dp_respects_epsilon(track in arb_track(), eps in 50.0f64..2000.0) {
        let pts: Vec<TrajPoint> = track.iter().map(TrajPoint::from).collect();
        let kept = douglas_peucker(&pts, eps);
        prop_assert!(kept.len() >= 2 || pts.len() < 2);
        for (i, p) in pts.iter().enumerate() {
            if kept.contains(&i) {
                continue;
            }
            let after = kept.iter().position(|&k| k > i).unwrap();
            let a = pts[kept[after - 1]].position();
            let b = pts[kept[after]].position();
            let d = p.position().segment_distance_m(&a, &b);
            prop_assert!(d <= eps + 1.0, "vertex {i} deviates {d} m > {eps}");
        }
    }

    /// Tighter thresholds keep at least as many points (monotonicity), and
    /// SED error cannot grow when more points are kept... SED monotonicity
    /// does not hold point-wise in general, so assert the weaker, always-true
    /// pair: ratio monotone in threshold, and zero-threshold keeps everything
    /// non-stationary.
    #[test]
    fn ratio_monotone_in_threshold(track in arb_track()) {
        let mut tight = DeadReckoningCompressor::new(10.0);
        let mut loose = DeadReckoningCompressor::new(1000.0);
        let kept_tight = tight.compress_batch(&track).len();
        let kept_loose = loose.compress_batch(&track).len();
        prop_assert!(kept_tight >= kept_loose);
    }

    #[test]
    fn sed_error_zero_against_self(track in arb_track()) {
        let pts: Vec<TrajPoint> = track.iter().map(TrajPoint::from).collect();
        let s = sed_error(&pts, &pts);
        prop_assert!(s.mean_m < 1e-6);
        prop_assert!(s.max_m < 1e-6);
        prop_assert_eq!(s.n, pts.len());
    }

    #[test]
    fn sed_stats_are_consistent(track in arb_track(), threshold in 20.0f64..500.0) {
        let mut c = DeadReckoningCompressor::new(threshold);
        let kept: Vec<TrajPoint> = c
            .compress_batch(&track)
            .iter()
            .map(TrajPoint::from)
            .collect();
        let pts: Vec<TrajPoint> = track.iter().map(TrajPoint::from).collect();
        let s = sed_error(&pts, &kept);
        prop_assert!(s.mean_m <= s.rmse_m + 1e-9);
        prop_assert!(s.rmse_m <= s.max_m + 1e-9);
        prop_assert!(s.max_m.is_finite());
        prop_assert!((0.0..=1.0).contains(&compression_ratio(pts.len(), kept.len())));
    }

    /// The critical-point detector never emits more points than it sees and
    /// always marks the first report of each object.
    #[test]
    fn detector_output_bounded(track in arb_track()) {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let pts = d.detect_batch(&track);
        prop_assert!(pts.len() <= track.len() * 2, "gap pairs can double-count");
        prop_assert_eq!(pts[0].kind, datacron_synopses::CriticalKind::TrackStart);
        prop_assert_eq!(pts[0].report, track[0]);
    }
}
