//! Noise filtering applied directly on the raw report stream.

use datacron_geo::TimeMs;
use datacron_model::{ObjectId, PositionReport};
use datacron_stream::{Operator, Record};
use rustc_hash::FxHashMap;

/// Counters describing what the cleanser dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanseStats {
    /// Reports accepted.
    pub accepted: u64,
    /// Dropped: invalid coordinates / timestamps / kinematics.
    pub implausible: u64,
    /// Dropped: duplicate (object, timestamp) pairs.
    pub duplicates: u64,
    /// Dropped: implied speed from the previous accepted fix exceeds the
    /// physical limit (GPS glitch / identity mix-up).
    pub speed_jumps: u64,
    /// Dropped: timestamp at or before the previous accepted fix.
    pub stale: u64,
}

impl CleanseStats {
    /// Total dropped reports.
    pub fn dropped(&self) -> u64 {
        self.implausible + self.duplicates + self.speed_jumps + self.stale
    }
}

#[derive(Debug, Clone, Copy)]
struct LastFix {
    time: TimeMs,
    lon: f64,
    lat: f64,
}

/// The stream cleanser: stateless plausibility checks plus per-object
/// monotonicity and speed-jump checks.
///
/// Usable as a plain filter ([`Cleanser::check`]) or as a stream
/// [`Operator`].
#[derive(Debug)]
pub struct Cleanser {
    /// Maximum physically plausible speed, m/s (default 60 ≈ 117 kn covers
    /// every vessel; use ~350 for aviation).
    pub max_speed_mps: f64,
    stats: CleanseStats,
    last: FxHashMap<ObjectId, LastFix>,
}

impl Default for Cleanser {
    fn default() -> Self {
        Self::new(60.0)
    }
}

impl Cleanser {
    /// Creates a cleanser with the given speed limit.
    pub fn new(max_speed_mps: f64) -> Self {
        Self {
            max_speed_mps,
            stats: CleanseStats::default(),
            last: FxHashMap::default(),
        }
    }

    /// The running statistics.
    pub fn stats(&self) -> CleanseStats {
        self.stats
    }

    /// Checks one report, updating per-object state. Returns `true` when the
    /// report survives.
    pub fn check(&mut self, r: &PositionReport) -> bool {
        if !r.is_plausible() {
            self.stats.implausible += 1;
            return false;
        }
        match self.last.get(&r.object) {
            Some(prev) if r.time == prev.time => {
                self.stats.duplicates += 1;
                return false;
            }
            Some(prev) if r.time < prev.time => {
                self.stats.stale += 1;
                return false;
            }
            Some(prev) => {
                let dt_s = (r.time - prev.time) as f64 / 1000.0;
                let prev_pos = datacron_geo::GeoPoint::new(prev.lon, prev.lat);
                let dist = r.position().haversine_m(&prev_pos);
                if dist / dt_s > self.max_speed_mps {
                    self.stats.speed_jumps += 1;
                    return false;
                }
            }
            None => {}
        }
        self.last.insert(
            r.object,
            LastFix {
                time: r.time,
                lon: r.lon,
                lat: r.lat,
            },
        );
        self.stats.accepted += 1;
        true
    }

    /// Cleans a batch, returning the surviving reports.
    pub fn clean_batch(&mut self, reports: &[PositionReport]) -> Vec<PositionReport> {
        reports.iter().filter(|r| self.check(r)).copied().collect()
    }
}

impl Operator<PositionReport, PositionReport> for Cleanser {
    fn on_record(
        &mut self,
        rec: Record<PositionReport>,
        out: &mut dyn FnMut(Record<PositionReport>),
    ) {
        if self.check(&rec.payload) {
            out(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::GeoPoint;
    use datacron_model::{NavStatus, SourceId};

    fn report(obj: u64, t: i64, lon: f64, lat: f64) -> PositionReport {
        PositionReport::maritime(
            ObjectId(obj),
            TimeMs(t),
            GeoPoint::new(lon, lat),
            5.0,
            90.0,
            SourceId::AIS_TERRESTRIAL,
            NavStatus::UnderWay,
        )
    }

    #[test]
    fn accepts_clean_sequence() {
        let mut c = Cleanser::default();
        // 0.001 deg ≈ 90 m per 60 s → ~1.5 m/s.
        for i in 0..10 {
            assert!(c.check(&report(1, i * 60_000, 24.0 + 0.001 * i as f64, 37.0)));
        }
        assert_eq!(c.stats().accepted, 10);
        assert_eq!(c.stats().dropped(), 0);
    }

    #[test]
    fn rejects_implausible() {
        let mut c = Cleanser::default();
        let mut r = report(1, 0, 24.0, 37.0);
        r.lat = 95.0;
        assert!(!c.check(&r));
        assert_eq!(c.stats().implausible, 1);
    }

    #[test]
    fn rejects_duplicates_and_stale() {
        let mut c = Cleanser::default();
        assert!(c.check(&report(1, 1000, 24.0, 37.0)));
        assert!(!c.check(&report(1, 1000, 24.0, 37.0)));
        assert!(!c.check(&report(1, 500, 24.0, 37.0)));
        assert_eq!(c.stats().duplicates, 1);
        assert_eq!(c.stats().stale, 1);
        // A later report is fine.
        assert!(c.check(&report(1, 2000, 24.0001, 37.0)));
    }

    #[test]
    fn rejects_speed_jump_then_recovers() {
        let mut c = Cleanser::default();
        assert!(c.check(&report(1, 0, 24.0, 37.0)));
        // 0.5 degrees (~44 km) in 60 s → ~740 m/s: glitch.
        assert!(!c.check(&report(1, 60_000, 24.5, 37.0)));
        assert_eq!(c.stats().speed_jumps, 1);
        // The glitch did not poison the state: a sane follow-up passes.
        assert!(c.check(&report(1, 120_000, 24.002, 37.0)));
    }

    #[test]
    fn per_object_state_is_independent() {
        let mut c = Cleanser::default();
        assert!(c.check(&report(1, 1000, 24.0, 37.0)));
        // Different object at the same instant, far away: fine.
        assert!(c.check(&report(2, 1000, 26.0, 39.0)));
        assert_eq!(c.stats().accepted, 2);
    }

    #[test]
    fn batch_filtering() {
        let mut c = Cleanser::default();
        let batch = vec![
            report(1, 0, 24.0, 37.0),
            report(1, 0, 24.0, 37.0),      // dup
            report(1, 60_000, 24.5, 37.0), // jump
            report(1, 120_000, 24.001, 37.0),
        ];
        let clean = c.clean_batch(&batch);
        assert_eq!(clean.len(), 2);
        assert_eq!(c.stats().dropped(), 2);
    }

    #[test]
    fn works_as_stream_operator() {
        use datacron_stream::Message;
        let mut c = Cleanser::default();
        let input = vec![
            Message::record(TimeMs(0), report(1, 0, 24.0, 37.0)),
            Message::record(TimeMs(0), report(1, 0, 24.0, 37.0)),
            Message::End,
        ];
        let out = c.run(input);
        let n = out.iter().filter(|m| m.as_record().is_some()).count();
        assert_eq!(n, 1);
    }
}
