//! In-situ stream processing: the paper's data-compression component.
//!
//! datAcron's in-situ processing "compresses and integrates data at high
//! rates of data compression without affecting the quality of analytics,
//! capitalizing on primitive operators that are applied directly on the data
//! streams". This crate implements those primitive operators:
//!
//! * **noise filtering** ([`filter`]) — implausible-coordinate rejection,
//!   duplicate suppression and speed-jump outlier removal, applied per
//!   object directly on the raw stream;
//! * **critical-point detection** ([`critical`]) — the synopsis proper:
//!   track start/end, stop start/end, turning points, speed changes,
//!   communication gaps and (aviation) takeoff/landing/level-off;
//! * **threshold compression** ([`compress`]) — dead-reckoning compression
//!   that keeps a report only when it deviates from the kinematic
//!   prediction, plus offline Douglas–Peucker as the classical baseline;
//! * **quality metrics** ([`quality`]) — compression ratio and synchronized
//!   Euclidean distance (SED) error between original and reconstructed
//!   trajectories, the measures behind experiment E1/E2.
//!
//! Everything is available both as plain functions over slices (batch) and
//! as [`datacron_stream::Operator`]s (streaming).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compress;
pub mod critical;
pub mod filter;
pub mod quality;

pub use compress::{douglas_peucker, DeadReckoningCompressor};
pub use critical::{CriticalKind, CriticalPoint, CriticalPointDetector, SynopsisConfig};
pub use filter::{CleanseStats, Cleanser};
pub use quality::{compression_ratio, sed_error, SedStats};
