//! Quality metrics: does compression hurt the analytics' view of movement?

use datacron_geo::position_at_time;
use datacron_model::TrajPoint;
use serde::{Deserialize, Serialize};

/// Synchronized-Euclidean-Distance error statistics between an original
/// trajectory and its compressed reconstruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SedStats {
    /// Number of original points compared.
    pub n: usize,
    /// Mean error, metres.
    pub mean_m: f64,
    /// Root-mean-square error, metres.
    pub rmse_m: f64,
    /// Maximum error, metres.
    pub max_m: f64,
}

/// Computes SED error: for every original point, the compressed trajectory
/// is linearly interpolated at the same timestamp and the great-circle
/// distance is measured.
///
/// `compressed` must be a time-ordered subset (or re-sampling) of the same
/// track. Original points outside the compressed time span are compared
/// against the nearest compressed endpoint.
pub fn sed_error(original: &[TrajPoint], compressed: &[TrajPoint]) -> SedStats {
    if original.is_empty() || compressed.is_empty() {
        return SedStats::default();
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    let mut seg = 0usize;
    for p in original {
        // Advance the segment cursor: compressed[seg] <= p.time < compressed[seg+1].
        while seg + 1 < compressed.len() && compressed[seg + 1].time <= p.time {
            seg += 1;
        }
        let approx = if seg + 1 < compressed.len() {
            let a = &compressed[seg];
            let b = &compressed[seg + 1];
            if p.time <= a.time {
                a.position()
            } else {
                position_at_time((&a.position(), a.time), (&b.position(), b.time), p.time)
            }
        } else {
            compressed[seg].position()
        };
        let err = p.position().haversine_m(&approx);
        sum += err;
        sum_sq += err * err;
        max = max.max(err);
    }
    let n = original.len();
    SedStats {
        n,
        mean_m: sum / n as f64,
        rmse_m: (sum_sq / n as f64).sqrt(),
        max_m: max,
    }
}

/// Compression ratio `1 - kept/original` in `[0, 1]`; 0 when nothing was
/// compressed (or inputs are empty).
pub fn compression_ratio(original: usize, kept: usize) -> f64 {
    if original == 0 {
        0.0
    } else {
        (1.0 - kept as f64 / original as f64).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{GeoPoint, TimeMs};

    fn tp(t_s: i64, lon: f64, lat: f64) -> TrajPoint {
        TrajPoint::new2(TimeMs(t_s * 1000), GeoPoint::new(lon, lat), 5.0, 90.0)
    }

    #[test]
    fn identical_trajectories_have_zero_error() {
        let pts: Vec<_> = (0..10)
            .map(|i| tp(i, 24.0 + 0.01 * i as f64, 37.0))
            .collect();
        let s = sed_error(&pts, &pts);
        assert_eq!(s.n, 10);
        assert!(s.mean_m < 1e-6);
        assert!(s.max_m < 1e-6);
    }

    #[test]
    fn straight_line_endpoints_reconstruct_exactly() {
        // Uniform motion: keeping only the endpoints loses nothing.
        let pts: Vec<_> = (0..11)
            .map(|i| tp(i * 10, 24.0, 37.0 + 0.001 * i as f64))
            .collect();
        let compressed = vec![pts[0], pts[10]];
        let s = sed_error(&pts, &compressed);
        assert!(s.max_m < 2.0, "max = {}", s.max_m);
    }

    #[test]
    fn detour_shows_up_as_error() {
        let mut pts: Vec<_> = (0..11)
            .map(|i| tp(i * 10, 24.0 + 0.001 * i as f64, 37.0))
            .collect();
        // A ~1.1 km northward detour in the middle.
        pts[5] = tp(50, 24.005, 37.01);
        let compressed = vec![pts[0], pts[10]];
        let s = sed_error(&pts, &compressed);
        assert!(s.max_m > 1_000.0, "max = {}", s.max_m);
        assert!(s.mean_m < s.max_m);
        assert!(s.rmse_m >= s.mean_m);
    }

    #[test]
    fn points_outside_span_use_endpoints() {
        let pts = vec![tp(0, 24.0, 37.0), tp(100, 24.1, 37.0)];
        let compressed = vec![tp(50, 24.05, 37.0)];
        let s = sed_error(&pts, &compressed);
        // Both originals compare against the single compressed point.
        assert_eq!(s.n, 2);
        assert!(s.max_m > 4000.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sed_error(&[], &[]), SedStats::default());
        let pts = vec![tp(0, 24.0, 37.0)];
        assert_eq!(sed_error(&pts, &[]), SedStats::default());
        assert_eq!(sed_error(&[], &pts), SedStats::default());
    }

    #[test]
    fn ratio_math() {
        assert_eq!(compression_ratio(100, 10), 0.9);
        assert_eq!(compression_ratio(0, 0), 0.0);
        assert_eq!(compression_ratio(10, 10), 0.0);
        assert_eq!(compression_ratio(10, 20), 0.0, "clamped at zero");
    }
}
