//! Critical-point detection: the trajectory synopsis.
//!
//! A synopsis replaces the dense report stream with the handful of points
//! where the movement *changes*: track start/end, stop start/end, turning
//! points, speed changes, communication gaps, and — for aviation — takeoff,
//! landing and level-off. Between critical points the movement is assumed
//! kinematically predictable, which is what makes the compression lossless
//! *for analytics* rather than for geometry.

use datacron_geo::units::heading_delta_deg;
use datacron_geo::TimeMs;
use datacron_model::{ObjectId, PositionReport};
use datacron_stream::{Operator, Record};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Thresholds steering critical-point detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynopsisConfig {
    /// Below this speed an object counts as stopped, m/s.
    pub stop_speed_mps: f64,
    /// A stop must last at least this long to be reported, ms.
    pub min_stop_ms: i64,
    /// Accumulated heading change that constitutes a turning point, degrees.
    pub turn_threshold_deg: f64,
    /// Relative speed change that constitutes a speed-change point.
    pub speed_change_frac: f64,
    /// Silence longer than this opens a communication gap, ms.
    pub gap_threshold_ms: i64,
    /// Altitude above which an aircraft counts as airborne, metres
    /// (aviation only; maritime reports never cross it).
    pub airborne_alt_m: f64,
    /// Vertical rate below which flight counts as level, m/s.
    pub level_vrate_mps: f64,
}

impl Default for SynopsisConfig {
    fn default() -> Self {
        Self {
            stop_speed_mps: 0.5,
            min_stop_ms: 5 * 60_000,
            turn_threshold_deg: 15.0,
            speed_change_frac: 0.25,
            gap_threshold_ms: 10 * 60_000,
            airborne_alt_m: 100.0,
            level_vrate_mps: 1.5,
        }
    }
}

/// The kinds of critical points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CriticalKind {
    /// First report of a track.
    TrackStart,
    /// Object dropped below the stop speed and stayed there.
    StopStart,
    /// Object resumed moving after a stop.
    StopEnd,
    /// Accumulated heading change exceeded the threshold.
    Turn,
    /// Speed changed by more than the configured fraction.
    SpeedChange,
    /// Silence exceeded the gap threshold (stamped at the last report
    /// before the silence).
    GapStart,
    /// First report after a gap.
    GapEnd,
    /// Aircraft became airborne.
    Takeoff,
    /// Aircraft returned to the surface.
    Landing,
    /// Aircraft transitioned from climb/descent to level flight.
    LevelOff,
}

/// A critical point: a kind plus the report it was detected at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalPoint {
    /// Why this report is critical.
    pub kind: CriticalKind,
    /// The underlying report.
    pub report: PositionReport,
}

/// Per-object detector state.
#[derive(Debug, Clone)]
struct TrackState {
    last: PositionReport,
    /// Heading accumulated since the last emitted turn/speed anchor.
    heading_acc: f64,
    /// Speed at the last speed anchor.
    anchor_speed: f64,
    /// Time the object first dipped below stop speed (None = moving).
    stop_since: Option<TimeMs>,
    /// Whether a StopStart has been emitted for the current stop.
    stop_open: bool,
    airborne: bool,
    climbing: bool,
}

/// The critical-point detector. Feed reports per object in event-time order
/// ([`CriticalPointDetector::update`]), or run it as a stream [`Operator`]
/// (it keys by object internally).
#[derive(Debug)]
pub struct CriticalPointDetector {
    config: SynopsisConfig,
    tracks: FxHashMap<ObjectId, TrackState>,
    emitted: u64,
    seen: u64,
}

impl CriticalPointDetector {
    /// Creates a detector.
    pub fn new(config: SynopsisConfig) -> Self {
        Self {
            config,
            tracks: FxHashMap::default(),
            emitted: 0,
            seen: 0,
        }
    }

    /// Reports seen so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Critical points emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Compression ratio achieved so far (`1 - emitted/seen`).
    pub fn ratio(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            1.0 - self.emitted as f64 / self.seen as f64
        }
    }

    /// Processes one report, appending any detected critical points to
    /// `out`. Reports must arrive in event-time order per object; stale
    /// reports are ignored.
    pub fn update(&mut self, r: &PositionReport, out: &mut Vec<CriticalPoint>) {
        self.seen += 1;
        let cfg = self.config;
        let n_before = out.len();
        match self.tracks.get_mut(&r.object) {
            None => {
                out.push(CriticalPoint {
                    kind: CriticalKind::TrackStart,
                    report: *r,
                });
                let airborne = r.alt_m > cfg.airborne_alt_m;
                self.tracks.insert(
                    r.object,
                    TrackState {
                        last: *r,
                        heading_acc: 0.0,
                        anchor_speed: r.speed_mps,
                        stop_since: (r.speed_mps < cfg.stop_speed_mps).then_some(r.time),
                        stop_open: false,
                        airborne,
                        climbing: r.vrate_mps.abs() > cfg.level_vrate_mps,
                    },
                );
            }
            Some(st) => {
                if r.time <= st.last.time {
                    self.seen -= 1;
                    return;
                }
                // --- gaps ---
                if r.time - st.last.time > cfg.gap_threshold_ms {
                    out.push(CriticalPoint {
                        kind: CriticalKind::GapStart,
                        report: st.last,
                    });
                    out.push(CriticalPoint {
                        kind: CriticalKind::GapEnd,
                        report: *r,
                    });
                    // A gap resets kinematic anchors.
                    st.heading_acc = 0.0;
                    st.anchor_speed = r.speed_mps;
                    st.stop_since = None;
                    st.stop_open = false;
                }

                // --- stops ---
                let slow = r.speed_mps.is_finite() && r.speed_mps < cfg.stop_speed_mps;
                match (slow, st.stop_since, st.stop_open) {
                    (true, None, _) => st.stop_since = Some(r.time),
                    (true, Some(since), false) if r.time - since >= cfg.min_stop_ms => {
                        out.push(CriticalPoint {
                            kind: CriticalKind::StopStart,
                            report: *r,
                        });
                        st.stop_open = true;
                    }
                    (false, Some(_), true) => {
                        out.push(CriticalPoint {
                            kind: CriticalKind::StopEnd,
                            report: *r,
                        });
                        st.stop_since = None;
                        st.stop_open = false;
                        st.anchor_speed = r.speed_mps;
                        st.heading_acc = 0.0;
                    }
                    (false, Some(_), false) => st.stop_since = None,
                    _ => {}
                }

                // --- turns & speed changes (only while moving) ---
                if !st.stop_open {
                    if r.heading_deg.is_finite() && st.last.heading_deg.is_finite() {
                        st.heading_acc += heading_delta_deg(r.heading_deg, st.last.heading_deg);
                        if st.heading_acc.abs() >= cfg.turn_threshold_deg {
                            out.push(CriticalPoint {
                                kind: CriticalKind::Turn,
                                report: *r,
                            });
                            st.heading_acc = 0.0;
                        }
                    }
                    if r.speed_mps.is_finite() && st.anchor_speed.is_finite() {
                        let base = st.anchor_speed.max(cfg.stop_speed_mps);
                        if (r.speed_mps - st.anchor_speed).abs() / base >= cfg.speed_change_frac {
                            out.push(CriticalPoint {
                                kind: CriticalKind::SpeedChange,
                                report: *r,
                            });
                            st.anchor_speed = r.speed_mps;
                        }
                    }
                }

                // --- aviation vertical profile ---
                let airborne_now = r.alt_m > cfg.airborne_alt_m;
                if airborne_now != st.airborne {
                    out.push(CriticalPoint {
                        kind: if airborne_now {
                            CriticalKind::Takeoff
                        } else {
                            CriticalKind::Landing
                        },
                        report: *r,
                    });
                    st.airborne = airborne_now;
                }
                let climbing_now = r.vrate_mps.abs() > cfg.level_vrate_mps;
                if st.climbing && !climbing_now && airborne_now {
                    out.push(CriticalPoint {
                        kind: CriticalKind::LevelOff,
                        report: *r,
                    });
                }
                st.climbing = climbing_now;

                st.last = *r;
            }
        }
        self.emitted += (out.len() - n_before) as u64;
    }

    /// Batch helper: runs the detector over reports (already event-time
    /// ordered per object) and returns all critical points.
    pub fn detect_batch(&mut self, reports: &[PositionReport]) -> Vec<CriticalPoint> {
        let mut out = Vec::new();
        for r in reports {
            self.update(r, &mut out);
        }
        out
    }
}

impl Operator<PositionReport, CriticalPoint> for CriticalPointDetector {
    fn on_record(
        &mut self,
        rec: Record<PositionReport>,
        out: &mut dyn FnMut(Record<CriticalPoint>),
    ) {
        let mut points = Vec::new();
        self.update(&rec.payload, &mut points);
        for cp in points {
            out(Record::new(cp.report.time, cp));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::GeoPoint;
    use datacron_model::{NavStatus, SourceId};

    fn rep(t_min: i64, lon: f64, speed: f64, heading: f64) -> PositionReport {
        PositionReport::maritime(
            ObjectId(1),
            TimeMs(t_min * 60_000),
            GeoPoint::new(lon, 37.0),
            speed,
            heading,
            SourceId::AIS_TERRESTRIAL,
            NavStatus::UnderWay,
        )
    }

    fn kinds(points: &[CriticalPoint]) -> Vec<CriticalKind> {
        points.iter().map(|p| p.kind).collect()
    }

    #[test]
    fn first_report_is_track_start() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let pts = d.detect_batch(&[rep(0, 24.0, 5.0, 90.0)]);
        assert_eq!(kinds(&pts), vec![CriticalKind::TrackStart]);
    }

    #[test]
    fn steady_cruise_emits_nothing_after_start() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let reports: Vec<_> = (0..60)
            .map(|i| rep(i, 24.0 + 0.005 * i as f64, 5.0, 90.0))
            .collect();
        let pts = d.detect_batch(&reports);
        assert_eq!(pts.len(), 1, "got {:?}", kinds(&pts));
        assert!(d.ratio() > 0.9);
    }

    #[test]
    fn stop_start_and_end() {
        let cfg = SynopsisConfig::default();
        let mut d = CriticalPointDetector::new(cfg);
        let mut reports = vec![rep(0, 24.0, 5.0, 90.0), rep(1, 24.003, 5.0, 90.0)];
        // Stop for 10 minutes (threshold 5).
        for i in 2..12 {
            reports.push(rep(i, 24.006, 0.1, 90.0));
        }
        reports.push(rep(12, 24.007, 4.0, 90.0));
        let pts = d.detect_batch(&reports);
        let ks = kinds(&pts);
        assert!(ks.contains(&CriticalKind::StopStart), "{ks:?}");
        assert!(ks.contains(&CriticalKind::StopEnd), "{ks:?}");
        // Exactly one stop episode.
        assert_eq!(
            ks.iter().filter(|k| **k == CriticalKind::StopStart).count(),
            1
        );
    }

    #[test]
    fn brief_slowdown_is_not_a_stop() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let reports = vec![
            rep(0, 24.0, 5.0, 90.0),
            rep(1, 24.003, 0.1, 90.0), // slow for 1 min only
            rep(2, 24.006, 5.0, 90.0),
        ];
        let pts = d.detect_batch(&reports);
        assert!(!kinds(&pts).contains(&CriticalKind::StopStart));
    }

    #[test]
    fn gradual_turn_detected_once_threshold_accumulates() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        // 4 degrees per minute: crosses 15 degrees at the 4th delta.
        let reports: Vec<_> = (0..8)
            .map(|i| rep(i, 24.0 + 0.003 * i as f64, 5.0, 90.0 + 4.0 * i as f64))
            .collect();
        let pts = d.detect_batch(&reports);
        let turns = kinds(&pts)
            .iter()
            .filter(|k| **k == CriticalKind::Turn)
            .count();
        assert_eq!(turns, 1, "{:?}", kinds(&pts));
    }

    #[test]
    fn oscillating_heading_does_not_accumulate() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        // ±5 degrees wiggle never sums past 15.
        let reports: Vec<_> = (0..20)
            .map(|i| {
                let h = if i % 2 == 0 { 90.0 } else { 95.0 };
                rep(i, 24.0 + 0.003 * i as f64, 5.0, h)
            })
            .collect();
        let pts = d.detect_batch(&reports);
        assert!(!kinds(&pts).contains(&CriticalKind::Turn));
    }

    #[test]
    fn speed_change_detected() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let reports = vec![
            rep(0, 24.0, 5.0, 90.0),
            rep(1, 24.003, 5.2, 90.0),
            rep(2, 24.006, 8.0, 90.0), // +60 %
        ];
        let pts = d.detect_batch(&reports);
        assert!(kinds(&pts).contains(&CriticalKind::SpeedChange));
    }

    #[test]
    fn gap_emits_start_at_last_fix_and_end_at_next() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let reports = vec![
            rep(0, 24.0, 5.0, 90.0),
            rep(1, 24.003, 5.0, 90.0),
            rep(30, 24.1, 5.0, 90.0), // 29-minute silence
        ];
        let pts = d.detect_batch(&reports);
        let ks = kinds(&pts);
        assert!(ks.contains(&CriticalKind::GapStart));
        assert!(ks.contains(&CriticalKind::GapEnd));
        let gap_start = pts
            .iter()
            .find(|p| p.kind == CriticalKind::GapStart)
            .unwrap();
        assert_eq!(gap_start.report.time, TimeMs(60_000), "stamped at last fix");
        let gap_end = pts.iter().find(|p| p.kind == CriticalKind::GapEnd).unwrap();
        assert_eq!(gap_end.report.time, TimeMs(30 * 60_000));
    }

    #[test]
    fn takeoff_landing_level_off() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let mk = |t_min: i64, alt: f64, vrate: f64| {
            PositionReport::aviation(
                ObjectId(9),
                TimeMs(t_min * 60_000),
                datacron_geo::GeoPoint3::new(10.0, 45.0, alt),
                200.0,
                0.0,
                vrate,
                SourceId::ADSB,
            )
        };
        let reports = vec![
            mk(0, 50.0, 0.0),
            mk(1, 500.0, 10.0), // takeoff
            mk(2, 5_000.0, 10.0),
            mk(3, 10_000.0, 0.0), // level-off
            mk(4, 10_000.0, 0.0),
            mk(5, 5_000.0, -10.0),
            mk(6, 50.0, -5.0), // landing
        ];
        let pts = d.detect_batch(&reports);
        let ks = kinds(&pts);
        assert!(ks.contains(&CriticalKind::Takeoff), "{ks:?}");
        assert!(ks.contains(&CriticalKind::LevelOff), "{ks:?}");
        assert!(ks.contains(&CriticalKind::Landing), "{ks:?}");
    }

    #[test]
    fn stale_reports_ignored() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let mut out = Vec::new();
        d.update(&rep(5, 24.0, 5.0, 90.0), &mut out);
        let before = d.seen();
        d.update(&rep(3, 24.1, 5.0, 90.0), &mut out);
        assert_eq!(d.seen(), before, "stale report counted");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn counters_and_ratio() {
        let mut d = CriticalPointDetector::new(SynopsisConfig::default());
        let reports: Vec<_> = (0..100)
            .map(|i| rep(i, 24.0 + 0.003 * i as f64, 5.0, 90.0))
            .collect();
        let pts = d.detect_batch(&reports);
        assert_eq!(d.seen(), 100);
        assert_eq!(d.emitted(), pts.len() as u64);
        assert!(d.ratio() >= 0.99 - f64::EPSILON);
    }
}
