//! Trajectory compression: online dead-reckoning and offline Douglas–Peucker.

use datacron_geo::{GeoPoint, TimeMs};
use datacron_model::{ObjectId, PositionReport, TrajPoint};
use datacron_stream::{Operator, Record};
use rustc_hash::FxHashMap;

/// Online threshold compression by dead reckoning.
///
/// For each object the compressor keeps the last *kept* report. A new report
/// is kept only when it deviates from the dead-reckoned prediction (last
/// kept position advanced along its heading at its speed) by more than
/// `threshold_m` — or when too much time has passed (`max_silence_ms`), so
/// downstream gap detection still works on the compressed stream.
#[derive(Debug)]
pub struct DeadReckoningCompressor {
    /// Deviation threshold in metres.
    pub threshold_m: f64,
    /// Emit a keep-alive report after this much silence even without
    /// deviation, ms.
    pub max_silence_ms: i64,
    kept_state: FxHashMap<ObjectId, PositionReport>,
    seen: u64,
    kept: u64,
}

impl DeadReckoningCompressor {
    /// Creates a compressor with the given deviation threshold and a
    /// 5-minute keep-alive.
    pub fn new(threshold_m: f64) -> Self {
        Self {
            threshold_m,
            max_silence_ms: 5 * 60_000,
            kept_state: FxHashMap::default(),
            seen: 0,
            kept: 0,
        }
    }

    /// Reports seen.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Reports kept.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Compression ratio achieved so far (`1 - kept/seen`).
    pub fn ratio(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            1.0 - self.kept as f64 / self.seen as f64
        }
    }

    /// Dead-reckoned position of `from` at time `t`.
    fn predict(from: &PositionReport, t: TimeMs) -> GeoPoint {
        let dt_s = (t - from.time) as f64 / 1000.0;
        if !from.speed_mps.is_finite() || !from.heading_deg.is_finite() || dt_s <= 0.0 {
            return from.position();
        }
        from.position()
            .destination(from.heading_deg, from.speed_mps * dt_s)
    }

    /// Decides whether to keep `r`. Updates state.
    pub fn check(&mut self, r: &PositionReport) -> bool {
        self.seen += 1;
        let keep = match self.kept_state.get(&r.object) {
            None => true,
            Some(last) => {
                if r.time <= last.time {
                    false
                } else if r.time - last.time >= self.max_silence_ms {
                    true
                } else {
                    let predicted = Self::predict(last, r.time);
                    predicted.haversine_m(&r.position()) > self.threshold_m
                }
            }
        };
        if keep {
            self.kept_state.insert(r.object, *r);
            self.kept += 1;
        }
        keep
    }

    /// Compresses a batch, returning the kept reports.
    pub fn compress_batch(&mut self, reports: &[PositionReport]) -> Vec<PositionReport> {
        reports.iter().filter(|r| self.check(r)).copied().collect()
    }
}

impl Operator<PositionReport, PositionReport> for DeadReckoningCompressor {
    fn on_record(
        &mut self,
        rec: Record<PositionReport>,
        out: &mut dyn FnMut(Record<PositionReport>),
    ) {
        if self.check(&rec.payload) {
            out(rec);
        }
    }
}

/// Offline Douglas–Peucker simplification of a trajectory polyline.
///
/// Returns the indices of the retained points (always includes the first and
/// last). `epsilon_m` is the maximum allowed perpendicular deviation.
pub fn douglas_peucker(points: &[TrajPoint], epsilon_m: f64) -> Vec<usize> {
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    // Explicit stack instead of recursion: trajectories can be long.
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let a = points[lo].position();
        let b = points[hi].position();
        let (mut max_d, mut max_i) = (0.0f64, lo + 1);
        for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
            let d = p.position().segment_distance_m(&a, &b);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > epsilon_m {
            keep[max_i] = true;
            stack.push((lo, max_i));
            stack.push((max_i, hi));
        }
    }
    keep.iter()
        .enumerate()
        .filter_map(|(i, k)| k.then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_model::{NavStatus, SourceId};

    fn rep(t_s: i64, pos: GeoPoint, speed: f64, heading: f64) -> PositionReport {
        PositionReport::maritime(
            ObjectId(1),
            TimeMs(t_s * 1000),
            pos,
            speed,
            heading,
            SourceId::AIS_TERRESTRIAL,
            NavStatus::UnderWay,
        )
    }

    /// A vessel sailing due east at exactly its reported speed: perfectly
    /// predictable, so only the first report should be kept.
    #[test]
    fn perfectly_predictable_track_collapses_to_first() {
        let mut c = DeadReckoningCompressor::new(50.0);
        let start = GeoPoint::new(24.0, 37.0);
        let speed = 6.0;
        let mut kept = 0;
        for i in 0..20 {
            let pos = start.destination(90.0, speed * 10.0 * i as f64);
            if c.check(&rep(i * 10, pos, speed, 90.0)) {
                kept += 1;
            }
        }
        assert_eq!(kept, 1);
        assert!(c.ratio() > 0.94);
    }

    #[test]
    fn course_change_is_kept() {
        let mut c = DeadReckoningCompressor::new(50.0);
        let start = GeoPoint::new(24.0, 37.0);
        let speed = 6.0;
        assert!(c.check(&rep(0, start, speed, 90.0)));
        // Continue straight: dropped.
        let p1 = start.destination(90.0, 60.0);
        assert!(!c.check(&rep(10, p1, speed, 90.0)));
        // Veer north: deviation grows past 50 m → kept.
        let p2 = start.destination(45.0, 160.0);
        assert!(c.check(&rep(27, p2, speed, 45.0)));
    }

    #[test]
    fn keep_alive_after_silence() {
        let mut c = DeadReckoningCompressor::new(1e9); // never deviates
        let start = GeoPoint::new(24.0, 37.0);
        assert!(c.check(&rep(0, start, 5.0, 90.0)));
        assert!(!c.check(&rep(60, start, 5.0, 90.0)));
        // Past max_silence (300 s): kept regardless of deviation.
        assert!(c.check(&rep(301, start, 5.0, 90.0)));
    }

    #[test]
    fn stale_duplicate_not_kept() {
        let mut c = DeadReckoningCompressor::new(50.0);
        let start = GeoPoint::new(24.0, 37.0);
        assert!(c.check(&rep(10, start, 5.0, 90.0)));
        assert!(!c.check(&rep(10, start, 5.0, 90.0)));
        assert!(!c.check(&rep(5, start, 5.0, 90.0)));
    }

    #[test]
    fn missing_kinematics_fall_back_to_position_hold() {
        let mut c = DeadReckoningCompressor::new(50.0);
        let start = GeoPoint::new(24.0, 37.0);
        let mut r0 = rep(0, start, f64::NAN, f64::NAN);
        r0.speed_mps = f64::NAN;
        assert!(c.check(&r0));
        // Object actually moved 200 m: prediction is "stay put" → kept.
        let r1 = rep(10, start.destination(90.0, 200.0), f64::NAN, f64::NAN);
        assert!(c.check(&r1));
    }

    #[test]
    fn per_object_independence() {
        let mut c = DeadReckoningCompressor::new(50.0);
        let mut a = rep(0, GeoPoint::new(24.0, 37.0), 5.0, 90.0);
        let mut b = rep(0, GeoPoint::new(25.0, 38.0), 5.0, 90.0);
        b.object = ObjectId(2);
        assert!(c.check(&a));
        assert!(c.check(&b));
        // Move object 1 exactly where dead reckoning predicts: dropped.
        let moved = GeoPoint::new(24.0, 37.0).destination(90.0, 50.0);
        a.time = TimeMs(10_000);
        a.lon = moved.lon;
        a.lat = moved.lat;
        assert!(!c.check(&a)); // predictable
        assert_eq!(c.seen(), 3);
        assert_eq!(c.kept(), 2);
    }

    // --- Douglas–Peucker ---

    fn tp(t_s: i64, lon: f64, lat: f64) -> TrajPoint {
        TrajPoint::new2(TimeMs(t_s * 1000), GeoPoint::new(lon, lat), 5.0, 90.0)
    }

    #[test]
    fn dp_straight_line_keeps_endpoints() {
        let pts: Vec<_> = (0..10)
            .map(|i| tp(i, 24.0 + 0.01 * i as f64, 37.0))
            .collect();
        let kept = douglas_peucker(&pts, 10.0);
        assert_eq!(kept, vec![0, 9]);
    }

    #[test]
    fn dp_keeps_corner() {
        let mut pts: Vec<_> = (0..5)
            .map(|i| tp(i, 24.0 + 0.01 * i as f64, 37.0))
            .collect();
        pts.extend((1..5).map(|i| tp(4 + i, 24.04, 37.0 + 0.01 * i as f64)));
        let kept = douglas_peucker(&pts, 10.0);
        assert!(kept.contains(&4), "corner dropped: {kept:?}");
        assert_eq!(*kept.first().unwrap(), 0);
        assert_eq!(*kept.last().unwrap(), pts.len() - 1);
    }

    #[test]
    fn dp_epsilon_controls_detail() {
        // A gentle arc.
        let pts: Vec<_> = (0..50)
            .map(|i| {
                let x = i as f64 / 49.0;
                tp(
                    i,
                    24.0 + 0.1 * x,
                    37.0 + 0.02 * (x * std::f64::consts::PI).sin(),
                )
            })
            .collect();
        let coarse = douglas_peucker(&pts, 2000.0);
        let fine = douglas_peucker(&pts, 20.0);
        assert!(coarse.len() < fine.len());
        assert!(fine.len() <= pts.len());
    }

    #[test]
    fn dp_small_inputs() {
        assert_eq!(douglas_peucker(&[], 10.0), Vec::<usize>::new());
        assert_eq!(douglas_peucker(&[tp(0, 24.0, 37.0)], 10.0), vec![0]);
        assert_eq!(
            douglas_peucker(&[tp(0, 24.0, 37.0), tp(1, 24.1, 37.0)], 10.0),
            vec![0, 1]
        );
    }

    #[test]
    fn dp_error_bound_holds() {
        // Property: every dropped point is within epsilon of the kept
        // polyline (checked against its bracketing kept segment).
        let pts: Vec<_> = (0..100)
            .map(|i| {
                let x = i as f64 / 99.0;
                tp(
                    i,
                    24.0 + 0.2 * x,
                    37.0 + 0.05 * (3.0 * x * std::f64::consts::PI).sin(),
                )
            })
            .collect();
        let eps = 500.0;
        let kept = douglas_peucker(&pts, eps);
        for (i, p) in pts.iter().enumerate() {
            if kept.contains(&i) {
                continue;
            }
            let seg_end_pos = kept.iter().position(|&k| k > i).unwrap();
            let a = pts[kept[seg_end_pos - 1]].position();
            let b = pts[kept[seg_end_pos]].position();
            let d = p.position().segment_distance_m(&a, &b);
            assert!(d <= eps + 1.0, "point {i} deviates {d} m");
        }
    }
}
