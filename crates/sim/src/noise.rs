//! The measurement model: how true positions become noisy observed reports.

use datacron_model::PositionReport;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the observation noise applied to true kinematic states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the position error, metres.
    pub pos_sigma_m: f64,
    /// Standard deviation of speed-over-ground error, m/s.
    pub speed_sigma_mps: f64,
    /// Standard deviation of course-over-ground error, degrees.
    pub heading_sigma_deg: f64,
    /// Probability a report is silently lost.
    pub dropout_prob: f64,
    /// Probability a report is replaced by a gross outlier (GPS glitch).
    pub outlier_prob: f64,
    /// Outlier displacement, metres.
    pub outlier_offset_m: f64,
    /// Maximum extra delivery delay (uniform in `[0, max]`), milliseconds.
    /// Produces out-of-order arrival when > report interval.
    pub max_delay_ms: i64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            pos_sigma_m: 12.0,
            speed_sigma_mps: 0.2,
            heading_sigma_deg: 2.0,
            dropout_prob: 0.02,
            outlier_prob: 0.002,
            outlier_offset_m: 8_000.0,
            max_delay_ms: 4_000,
        }
    }
}

impl NoiseModel {
    /// A noiseless model (for tests and quality baselines).
    pub fn none() -> Self {
        Self {
            pos_sigma_m: 0.0,
            speed_sigma_mps: 0.0,
            heading_sigma_deg: 0.0,
            dropout_prob: 0.0,
            outlier_prob: 0.0,
            outlier_offset_m: 0.0,
            max_delay_ms: 0,
        }
    }

    /// Applies observation noise to a true report.
    ///
    /// Returns `None` when the report is dropped, otherwise the noisy report
    /// plus its *delivery time* (event time + transport delay), which callers
    /// use to order the observed stream.
    pub fn observe(
        &self,
        truth: &PositionReport,
        rng: &mut StdRng,
    ) -> Option<(PositionReport, i64)> {
        if self.dropout_prob > 0.0 && rng.gen::<f64>() < self.dropout_prob {
            return None;
        }
        let mut obs = *truth;
        let pos = truth.position();
        let noisy = if self.outlier_prob > 0.0 && rng.gen::<f64>() < self.outlier_prob {
            pos.destination(rng.gen::<f64>() * 360.0, self.outlier_offset_m)
        } else if self.pos_sigma_m > 0.0 {
            // Isotropic Gaussian via two independent axes.
            let d = gaussian(rng) * self.pos_sigma_m;
            let bearing = rng.gen::<f64>() * 360.0;
            pos.destination(bearing, d.abs())
        } else {
            pos
        };
        obs.lon = noisy.lon;
        obs.lat = noisy.lat;
        if obs.speed_mps.is_finite() && self.speed_sigma_mps > 0.0 {
            obs.speed_mps = (obs.speed_mps + gaussian(rng) * self.speed_sigma_mps).max(0.0);
        }
        if obs.heading_deg.is_finite() && self.heading_sigma_deg > 0.0 {
            obs.heading_deg = datacron_geo::units::normalize_deg(
                obs.heading_deg + gaussian(rng) * self.heading_sigma_deg,
            );
        }
        let delay = if self.max_delay_ms > 0 {
            rng.gen_range(0..=self.max_delay_ms)
        } else {
            0
        };
        Some((obs, truth.time.millis() + delay))
    }
}

/// A standard-normal sample (Box–Muller; one value per call keeps the code
/// simple — the generator is not the bottleneck).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{GeoPoint, TimeMs};
    use datacron_model::{NavStatus, ObjectId, SourceId};
    use rand::SeedableRng;

    fn truth() -> PositionReport {
        PositionReport::maritime(
            ObjectId(1),
            TimeMs(10_000),
            GeoPoint::new(24.0, 37.0),
            5.0,
            90.0,
            SourceId::AIS_TERRESTRIAL,
            NavStatus::UnderWay,
        )
    }

    #[test]
    fn noiseless_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let (obs, delivery) = NoiseModel::none().observe(&truth(), &mut rng).unwrap();
        assert_eq!(obs, truth());
        assert_eq!(delivery, 10_000);
    }

    #[test]
    fn noise_perturbs_but_stays_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = NoiseModel {
            outlier_prob: 0.0,
            dropout_prob: 0.0,
            ..NoiseModel::default()
        };
        let t = truth();
        for _ in 0..200 {
            let (obs, delivery) = model.observe(&t, &mut rng).unwrap();
            let err = obs.position().haversine_m(&t.position());
            assert!(err < 120.0, "err = {err}");
            assert!(obs.speed_mps >= 0.0);
            assert!((0.0..360.0).contains(&obs.heading_deg));
            assert!(delivery >= 10_000 && delivery <= 10_000 + model.max_delay_ms);
        }
    }

    #[test]
    fn dropout_rate_approximately_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = NoiseModel {
            dropout_prob: 0.3,
            ..NoiseModel::none()
        };
        let t = truth();
        let n = 5000;
        let kept = (0..n)
            .filter(|_| model.observe(&t, &mut rng).is_some())
            .count();
        let rate = 1.0 - kept as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "dropout rate {rate}");
    }

    #[test]
    fn outliers_jump_far() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = NoiseModel {
            pos_sigma_m: 0.0,
            outlier_prob: 1.0,
            outlier_offset_m: 8000.0,
            dropout_prob: 0.0,
            speed_sigma_mps: 0.0,
            heading_sigma_deg: 0.0,
            max_delay_ms: 0,
        };
        let t = truth();
        let (obs, _) = model.observe(&t, &mut rng).unwrap();
        let err = obs.position().haversine_m(&t.position());
        assert!((err - 8000.0).abs() < 1.0, "err = {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = NoiseModel::default();
        let t = truth();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .filter_map(|_| model.observe(&t, &mut rng))
                .map(|(o, d)| (o.lon, o.lat, d))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
