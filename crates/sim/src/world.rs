//! Static world models: ports, shipping lanes, airports and airways.

use datacron_geo::{BoundingBox, GeoPoint, Polygon};
use serde::{Deserialize, Serialize};

/// A port in the maritime world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Human-readable name.
    pub name: String,
    /// Port location (harbour entrance).
    pub location: GeoPoint,
}

/// The maritime world: a region, its ports and the shipping lanes that
/// connect them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaritimeWorld {
    /// Region of interest.
    pub region: BoundingBox,
    /// Ports vessels travel between.
    pub ports: Vec<Port>,
    /// Shipping lanes: waypoint polylines indexed by `(from_port, to_port)`.
    /// Lanes are stored one-way; the reverse direction reverses the points.
    pub lanes: Vec<Lane>,
    /// Monitored zones (e.g. protected areas) used for zone-event scripts.
    pub zones: Vec<(String, Polygon)>,
}

/// A shipping lane between two ports, as a waypoint polyline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lane {
    /// Index of the origin port in [`MaritimeWorld::ports`].
    pub from: usize,
    /// Index of the destination port.
    pub to: usize,
    /// Intermediate waypoints, excluding the port endpoints.
    pub waypoints: Vec<GeoPoint>,
}

impl MaritimeWorld {
    /// The full waypoint path (including endpoints) for a lane index, in the
    /// requested direction.
    pub fn lane_path(&self, lane_idx: usize, reversed: bool) -> Vec<GeoPoint> {
        let lane = &self.lanes[lane_idx];
        let mut path = Vec::with_capacity(lane.waypoints.len() + 2);
        path.push(self.ports[lane.from].location);
        path.extend(lane.waypoints.iter().copied());
        path.push(self.ports[lane.to].location);
        if reversed {
            path.reverse();
        }
        path
    }
}

/// An airport in the aviation world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Airport {
    /// ICAO code, e.g. `"LGAV"`.
    pub icao: String,
    /// Airport reference point.
    pub location: GeoPoint,
    /// Field elevation in metres.
    pub elevation_m: f64,
}

/// The aviation world: a region, its airports, and en-route sectors used for
/// hotspot/capacity analytics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AviationWorld {
    /// Region of interest.
    pub region: BoundingBox,
    /// Airports flights operate between.
    pub airports: Vec<Airport>,
    /// En-route sectors (name, polygon, declared capacity in simultaneous
    /// flights).
    pub sectors: Vec<(String, Polygon, usize)>,
}

/// The default maritime world: a stylised Aegean with six ports and lanes
/// between the major pairs.
pub fn aegean_world() -> MaritimeWorld {
    let ports = vec![
        Port {
            name: "Piraeus".into(),
            location: GeoPoint::new(23.60, 37.93),
        },
        Port {
            name: "Thessaloniki".into(),
            location: GeoPoint::new(22.91, 40.61),
        },
        Port {
            name: "Heraklion".into(),
            location: GeoPoint::new(25.14, 35.35),
        },
        Port {
            name: "Rhodes".into(),
            location: GeoPoint::new(28.22, 36.44),
        },
        Port {
            name: "Izmir".into(),
            location: GeoPoint::new(26.97, 38.44),
        },
        Port {
            name: "Chania".into(),
            location: GeoPoint::new(24.02, 35.52),
        },
    ];
    // Waypoints bend lanes around the larger islands; geometry is stylised
    // but produces realistic lane-following traffic.
    let lanes = vec![
        Lane {
            from: 0,
            to: 1,
            waypoints: vec![GeoPoint::new(24.00, 38.80), GeoPoint::new(23.60, 39.90)],
        },
        Lane {
            from: 0,
            to: 2,
            waypoints: vec![GeoPoint::new(24.20, 37.20), GeoPoint::new(24.80, 36.10)],
        },
        Lane {
            from: 0,
            to: 3,
            waypoints: vec![GeoPoint::new(25.30, 37.00), GeoPoint::new(27.00, 36.50)],
        },
        Lane {
            from: 0,
            to: 4,
            waypoints: vec![GeoPoint::new(24.70, 37.80), GeoPoint::new(26.00, 38.20)],
        },
        Lane {
            from: 2,
            to: 3,
            waypoints: vec![GeoPoint::new(26.40, 35.60)],
        },
        Lane {
            from: 1,
            to: 4,
            waypoints: vec![GeoPoint::new(24.50, 40.00), GeoPoint::new(25.80, 39.20)],
        },
        Lane {
            from: 2,
            to: 5,
            waypoints: vec![GeoPoint::new(24.60, 35.20)],
        },
        Lane {
            from: 3,
            to: 4,
            waypoints: vec![GeoPoint::new(27.40, 37.40)],
        },
    ];
    let zones = vec![
        (
            "natura-kyklades".to_string(),
            Polygon::circle(GeoPoint::new(25.2, 36.9), 45_000.0, 24),
        ),
        (
            "anchorage-piraeus".to_string(),
            Polygon::circle(GeoPoint::new(23.55, 37.88), 8_000.0, 16),
        ),
    ];
    MaritimeWorld {
        region: BoundingBox::new(22.0, 34.5, 29.5, 41.2),
        ports,
        lanes,
        zones,
    }
}

/// The default aviation world: eight European airports and a 3×2 grid of
/// en-route sectors over the core area.
pub fn european_airspace() -> AviationWorld {
    let airports = vec![
        Airport {
            icao: "LGAV".into(),
            location: GeoPoint::new(23.94, 37.94),
            elevation_m: 94.0,
        },
        Airport {
            icao: "LIRF".into(),
            location: GeoPoint::new(12.25, 41.80),
            elevation_m: 5.0,
        },
        Airport {
            icao: "LFPG".into(),
            location: GeoPoint::new(2.55, 49.01),
            elevation_m: 119.0,
        },
        Airport {
            icao: "EDDF".into(),
            location: GeoPoint::new(8.57, 50.03),
            elevation_m: 111.0,
        },
        Airport {
            icao: "LEMD".into(),
            location: GeoPoint::new(-3.57, 40.47),
            elevation_m: 610.0,
        },
        Airport {
            icao: "EHAM".into(),
            location: GeoPoint::new(4.76, 52.31),
            elevation_m: -3.0,
        },
        Airport {
            icao: "LOWW".into(),
            location: GeoPoint::new(16.57, 48.11),
            elevation_m: 183.0,
        },
        Airport {
            icao: "LSZH".into(),
            location: GeoPoint::new(8.56, 47.46),
            elevation_m: 432.0,
        },
    ];
    let mut sectors = Vec::new();
    let (lon0, lat0) = (2.0, 42.0);
    let (dlon, dlat) = (7.0, 4.5);
    for sy in 0..2 {
        for sx in 0..3 {
            let b = BoundingBox::new(
                lon0 + dlon * sx as f64,
                lat0 + dlat * sy as f64,
                lon0 + dlon * (sx + 1) as f64,
                lat0 + dlat * (sy + 1) as f64,
            );
            sectors.push((format!("SECT-{sx}{sy}"), Polygon::rectangle(&b), 12usize));
        }
    }
    AviationWorld {
        region: BoundingBox::new(-6.0, 34.0, 30.0, 55.0),
        airports,
        sectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aegean_world_is_consistent() {
        let w = aegean_world();
        assert!(w.ports.len() >= 4);
        for port in &w.ports {
            assert!(
                w.region.contains(&port.location),
                "{} outside region",
                port.name
            );
        }
        for lane in &w.lanes {
            assert!(lane.from < w.ports.len());
            assert!(lane.to < w.ports.len());
            assert_ne!(lane.from, lane.to);
            for wp in &lane.waypoints {
                assert!(w.region.contains(wp));
            }
        }
    }

    #[test]
    fn lane_path_directions() {
        let w = aegean_world();
        let fwd = w.lane_path(0, false);
        let rev = w.lane_path(0, true);
        assert_eq!(fwd.len(), rev.len());
        assert_eq!(fwd.first(), rev.last());
        assert_eq!(fwd.last(), rev.first());
        assert_eq!(*fwd.first().unwrap(), w.ports[w.lanes[0].from].location);
        assert_eq!(*fwd.last().unwrap(), w.ports[w.lanes[0].to].location);
    }

    #[test]
    fn airspace_sectors_cover_core() {
        let w = european_airspace();
        assert_eq!(w.sectors.len(), 6);
        for ap in &w.airports {
            assert!(
                w.region.contains(&ap.location),
                "{} outside region",
                ap.icao
            );
        }
        // Sector polygons are disjoint rectangles (tile the core area).
        let p = GeoPoint::new(5.0, 44.0);
        let containing = w
            .sectors
            .iter()
            .filter(|(_, poly, _)| poly.contains(&p))
            .count();
        assert_eq!(containing, 1);
    }

    #[test]
    fn zones_inside_region() {
        let w = aegean_world();
        for (name, poly) in &w.zones {
            assert!(
                w.region.contains_bbox(poly.bbox()),
                "zone {name} escapes region"
            );
        }
    }
}
