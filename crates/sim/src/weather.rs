//! A synthetic weather grid — the archival enrichment source.
//!
//! datAcron enriches trajectories with meteorological context. We substitute
//! a smooth, seeded wind field: a sum of seeded sinusoidal modes over space
//! and time, sampled onto a [`datacron_geo::Grid`].

use datacron_geo::{BoundingBox, GeoPoint, Grid, TimeMs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One sinusoidal mode of the synthetic field.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Mode {
    kx: f64,
    ky: f64,
    kt: f64,
    phase: f64,
    amp: f64,
}

/// A smooth synthetic wind field over a region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherGrid {
    grid: Grid,
    modes_u: Vec<Mode>,
    modes_v: Vec<Mode>,
    /// Mean wind components, m/s.
    mean_u: f64,
    mean_v: f64,
}

impl WeatherGrid {
    /// Builds a seeded wind field over `extent` with `cell_deg` resolution.
    pub fn new(extent: BoundingBox, cell_deg: f64, seed: u64) -> Option<Self> {
        let grid = Grid::new(extent, cell_deg)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let gen_modes = |rng: &mut StdRng| -> Vec<Mode> {
            (0..5)
                .map(|_| Mode {
                    kx: rng.gen_range(0.2..1.5),
                    ky: rng.gen_range(0.2..1.5),
                    kt: rng.gen_range(0.05..0.5),
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                    amp: rng.gen_range(0.5..2.5),
                })
                .collect()
        };
        let modes_u = gen_modes(&mut rng);
        let modes_v = gen_modes(&mut rng);
        Some(Self {
            grid,
            modes_u,
            modes_v,
            mean_u: rng.gen_range(-4.0..4.0),
            mean_v: rng.gen_range(-4.0..4.0),
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    fn eval(modes: &[Mode], mean: f64, p: &GeoPoint, t_hours: f64) -> f64 {
        mean + modes
            .iter()
            .map(|m| m.amp * (m.kx * p.lon + m.ky * p.lat + m.kt * t_hours + m.phase).sin())
            .sum::<f64>()
    }

    /// Wind vector `(u, v)` in m/s at a point and time.
    pub fn wind_at(&self, p: &GeoPoint, t: TimeMs) -> (f64, f64) {
        let th = t.as_secs_f64() / 3600.0;
        (
            Self::eval(&self.modes_u, self.mean_u, p, th),
            Self::eval(&self.modes_v, self.mean_v, p, th),
        )
    }

    /// Wind speed in m/s at a point and time.
    pub fn wind_speed_at(&self, p: &GeoPoint, t: TimeMs) -> f64 {
        let (u, v) = self.wind_at(p, t);
        (u * u + v * v).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> WeatherGrid {
        WeatherGrid::new(BoundingBox::new(22.0, 34.0, 30.0, 41.0), 0.5, 17).unwrap()
    }

    #[test]
    fn deterministic() {
        let a = field();
        let b = field();
        let p = GeoPoint::new(24.3, 37.1);
        assert_eq!(
            a.wind_at(&p, TimeMs(3_600_000)),
            b.wind_at(&p, TimeMs(3_600_000))
        );
    }

    #[test]
    fn bounded_magnitude() {
        let f = field();
        for i in 0..20 {
            for j in 0..20 {
                let p = GeoPoint::new(22.0 + 0.4 * i as f64, 34.0 + 0.35 * j as f64);
                let s = f.wind_speed_at(&p, TimeMs(i * 600_000));
                // 5 modes × 2.5 + mean 4 per component → well under 25 m/s.
                assert!(s < 25.0, "wind {s} m/s");
            }
        }
    }

    #[test]
    fn smooth_in_space() {
        let f = field();
        let p = GeoPoint::new(25.0, 37.0);
        let q = GeoPoint::new(25.01, 37.0);
        let (u1, v1) = f.wind_at(&p, TimeMs(0));
        let (u2, v2) = f.wind_at(&q, TimeMs(0));
        assert!((u1 - u2).abs() < 0.5);
        assert!((v1 - v2).abs() < 0.5);
    }

    #[test]
    fn varies_in_time() {
        let f = field();
        let p = GeoPoint::new(25.0, 37.0);
        let a = f.wind_at(&p, TimeMs(0));
        let b = f.wind_at(&p, TimeMs::from_hours(12));
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_bad_grid() {
        assert!(WeatherGrid::new(BoundingBox::EMPTY, 0.5, 1).is_none());
        assert!(WeatherGrid::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0), 0.0, 1).is_none());
    }
}
