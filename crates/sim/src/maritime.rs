//! The maritime traffic generator.
//!
//! Vessels sail shipping lanes between ports at cruise speed, dwell moored
//! in port between voyages, and a configurable share of them executes
//! scripted anomalous behaviours — loitering, pairwise rendezvous, AIS gaps
//! and drifting — each of which is recorded in the ground truth so the
//! analytics can be scored.

use crate::noise::{gaussian, NoiseModel};
use crate::world::{aegean_world, MaritimeWorld};
use datacron_geo::{GeoPoint, TimeInterval, TimeMs};
use datacron_model::{
    EventKind, GroundTruth, LabeledEvent, NavStatus, ObjectId, PositionReport, SourceId, TrajPoint,
    Trajectory, VesselInfo,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a maritime scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaritimeConfig {
    /// RNG seed; the scenario is fully determined by the config.
    pub seed: u64,
    /// Number of vessels in the normal fleet (rendezvous pairs are extra).
    pub n_vessels: usize,
    /// Scenario duration in milliseconds.
    pub duration_ms: i64,
    /// True-state sampling / AIS reporting interval in milliseconds.
    pub report_interval_ms: i64,
    /// Observation noise model.
    pub noise: NoiseModel,
    /// Fraction of the fleet that loiters once during the scenario.
    pub frac_loitering: f64,
    /// Fraction of the fleet that goes dark (AIS gap) once.
    pub frac_gap: f64,
    /// Fraction of the fleet that drifts once.
    pub frac_drifting: f64,
    /// Number of scripted rendezvous vessel pairs (adds `2 × pairs` vessels).
    pub n_rendezvous_pairs: usize,
}

impl Default for MaritimeConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            n_vessels: 50,
            duration_ms: TimeMs::from_hours(6).millis(),
            report_interval_ms: 10_000,
            noise: NoiseModel::default(),
            frac_loitering: 0.1,
            frac_gap: 0.08,
            frac_drifting: 0.05,
            n_rendezvous_pairs: 2,
        }
    }
}

/// An observed report together with its delivery time (event time plus
/// transport delay). Sorting by `delivery_ms` reproduces the out-of-order
/// arrival the stream engine must handle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedReport {
    /// The noisy report as received.
    pub report: PositionReport,
    /// Wall-clock arrival time at the processing system.
    pub delivery_ms: i64,
}

/// The output of a maritime scenario run.
#[derive(Debug, Clone)]
pub struct MaritimeData {
    /// Observed (noisy, lossy) reports, sorted by event time.
    pub reports: Vec<ObservedReport>,
    /// Noise-free true trajectories, one per vessel, at the tick resolution.
    pub true_trajectories: Vec<Trajectory>,
    /// Static registry info for every vessel.
    pub vessels: Vec<VesselInfo>,
    /// Planted behaviours.
    pub truth: GroundTruth,
    /// The world the scenario ran in.
    pub world: MaritimeWorld,
}

impl MaritimeData {
    /// Reports sorted by delivery time (out-of-order in event time).
    pub fn reports_delivery_order(&self) -> Vec<ObservedReport> {
        let mut v = self.reports.clone();
        v.sort_by_key(|r| (r.delivery_ms, r.report.time));
        v
    }
}

/// One scripted anomaly, scheduled before simulation starts.
#[derive(Debug, Clone, Copy)]
enum Script {
    None,
    Loiter { start: TimeMs, dur_ms: i64 },
    Gap { start: TimeMs, dur_ms: i64 },
    Drift { start: TimeMs, dur_ms: i64 },
}

/// What a vessel is currently doing.
#[derive(Debug, Clone)]
enum Activity {
    /// Following `path` towards waypoint `next_wp` at `speed_mps`.
    Sail {
        path: Vec<GeoPoint>,
        next_wp: usize,
        speed_mps: f64,
    },
    /// Moored in port until `until`.
    Moor { until: TimeMs },
    /// Loitering around `center` until `until`.
    Loiter { center: GeoPoint, until: TimeMs },
    /// Drifting on `bearing` until `until`.
    Drift { bearing: f64, until: TimeMs },
}

struct VesselState {
    id: ObjectId,
    pos: GeoPoint,
    heading: f64,
    speed: f64,
    nav: NavStatus,
    activity: Activity,
    script: Script,
    /// Set while a Gap script suppresses emission.
    dark: bool,
    /// Base cruise speed for this vessel.
    cruise_mps: f64,
    /// Current port index (for picking the next voyage).
    port: usize,
}

/// Draws a plausible two-word ship name.
pub fn random_ship_name(rng: &mut StdRng) -> String {
    const A: &[&str] = &[
        "AGIOS",
        "NISSOS",
        "BLUE",
        "AEGEAN",
        "POSEIDON",
        "KYMA",
        "ASTERIA",
        "THALASSA",
        "IONIAN",
        "OLYMPIC",
        "MYKONOS",
        "KRITI",
        "DELOS",
        "NAXOS",
        "PELAGOS",
        "ELEFTHERIA",
    ];
    const B: &[&str] = &[
        "STAR", "WAVE", "EXPRESS", "GLORY", "SPIRIT", "TRADER", "CARRIER", "PEARL", "QUEEN",
        "HORIZON", "WIND", "SUN", "DREAM", "LEGEND", "VOYAGER", "FORTUNE",
    ];
    format!(
        "{} {}",
        A[rng.gen_range(0..A.len())],
        B[rng.gen_range(0..B.len())]
    )
}

fn make_vessel_info(idx: usize, rng: &mut StdRng) -> VesselInfo {
    let ship_type = *[30u8, 52, 60, 70, 71, 72, 80, 81]
        .get(rng.gen_range(0..8))
        .unwrap();
    let length_m = match ship_type {
        30 => rng.gen_range(18.0..40.0),
        60 => rng.gen_range(80.0..200.0),
        80 | 81 => rng.gen_range(120.0..330.0),
        _ => rng.gen_range(90.0..300.0),
    };
    let flag = ["GR", "MT", "PA", "LR", "CY"][rng.gen_range(0..5)];
    VesselInfo {
        object: ObjectId(idx as u64),
        mmsi: 237_000_000 + idx as u32,
        name: random_ship_name(rng),
        ship_type,
        length_m: length_m as f32,
        flag: flag.to_string(),
    }
}

/// Picks a lane touching `port` and returns `(path, other_port)`.
fn pick_voyage(world: &MaritimeWorld, port: usize, rng: &mut StdRng) -> (Vec<GeoPoint>, usize) {
    let touching: Vec<(usize, bool)> = world
        .lanes
        .iter()
        .enumerate()
        .filter_map(|(i, l)| {
            if l.from == port {
                Some((i, false))
            } else if l.to == port {
                Some((i, true))
            } else {
                None
            }
        })
        .collect();
    if touching.is_empty() {
        // Isolated port (shouldn't happen with the default world): sail to
        // a random port directly.
        let dest = (port + 1) % world.ports.len();
        return (
            vec![world.ports[port].location, world.ports[dest].location],
            dest,
        );
    }
    let (lane_idx, reversed) = touching[rng.gen_range(0..touching.len())];
    let lane = &world.lanes[lane_idx];
    let dest = if reversed { lane.from } else { lane.to };
    (world.lane_path(lane_idx, reversed), dest)
}

/// Generates a maritime scenario. Deterministic in `config`.
pub fn generate_maritime(config: &MaritimeConfig) -> MaritimeData {
    let world = aegean_world();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tick = config.report_interval_ms.max(1000);
    let n_ticks = (config.duration_ms / tick).max(1);

    let total_vessels = config.n_vessels + 2 * config.n_rendezvous_pairs;
    let mut vessels: Vec<VesselInfo> = (0..total_vessels)
        .map(|i| make_vessel_info(i, &mut rng))
        .collect();
    // Rendezvous actors look like fishing vessels.
    for p in 0..config.n_rendezvous_pairs {
        for k in 0..2 {
            let idx = config.n_vessels + 2 * p + k;
            vessels[idx].ship_type = 30;
        }
    }

    let mut truth = GroundTruth::default();
    let mut states: Vec<VesselState> = Vec::with_capacity(total_vessels);

    // --- normal fleet, with per-vessel anomaly scripts ---
    let n_loiter = (config.n_vessels as f64 * config.frac_loitering).round() as usize;
    let n_gap = (config.n_vessels as f64 * config.frac_gap).round() as usize;
    let n_drift = (config.n_vessels as f64 * config.frac_drifting).round() as usize;
    for i in 0..config.n_vessels {
        let port = rng.gen_range(0..world.ports.len());
        let cruise = rng.gen_range(4.0..9.5);
        let (path, dest) = pick_voyage(&world, port, &mut rng);
        // Stagger departures so traffic is spread through the scenario.
        let depart = TimeMs(rng.gen_range(0..(config.duration_ms / 4).max(1)));
        let script = {
            // Schedule anomalies in the middle half of the run so they fall
            // while the vessel is under way.
            let start = TimeMs(rng.gen_range(config.duration_ms / 4..config.duration_ms * 3 / 4));
            if i < n_loiter {
                Script::Loiter {
                    start,
                    dur_ms: rng.gen_range(30..90) * 60_000,
                }
            } else if i < n_loiter + n_gap {
                Script::Gap {
                    start,
                    dur_ms: rng.gen_range(20..60) * 60_000,
                }
            } else if i < n_loiter + n_gap + n_drift {
                Script::Drift {
                    start,
                    dur_ms: rng.gen_range(30..80) * 60_000,
                }
            } else {
                Script::None
            }
        };
        states.push(VesselState {
            id: ObjectId(i as u64),
            pos: world.ports[port].location,
            heading: 0.0,
            speed: 0.0,
            nav: NavStatus::Moored,
            activity: Activity::Moor { until: depart },
            script,
            dark: false,
            cruise_mps: cruise,
            port: dest,
        });
        // Arm the voyage: replace activity when depart passes (handled by
        // Moor expiry), so stash the first path by transitioning on expiry.
        // We pre-store the path inside the state via a trick: start sailing
        // immediately if depart is 0.
        if depart == TimeMs(0) {
            states.last_mut().unwrap().activity = Activity::Sail {
                path,
                next_wp: 1,
                speed_mps: cruise,
            };
            states.last_mut().unwrap().nav = NavStatus::UnderWay;
        }
    }

    // --- rendezvous pairs ---
    for p in 0..config.n_rendezvous_pairs {
        let meet = GeoPoint::new(rng.gen_range(24.0..26.5), rng.gen_range(36.0..38.5));
        let t_meet = TimeMs(rng.gen_range(config.duration_ms / 3..config.duration_ms / 2));
        let dwell_ms = rng.gen_range(20..40) * 60_000;
        for k in 0..2 {
            let idx = config.n_vessels + 2 * p + k;
            let speed = rng.gen_range(4.5..7.0);
            // Start far enough away to arrive roughly at t_meet.
            let travel_s = t_meet.millis() as f64 / 1000.0;
            let dist = (speed * travel_s).min(180_000.0);
            let bearing = rng.gen_range(0.0..360.0);
            let start = meet.destination(bearing, dist);
            states.push(VesselState {
                id: ObjectId(idx as u64),
                pos: start,
                heading: 0.0,
                speed,
                nav: NavStatus::UnderWay,
                activity: Activity::Sail {
                    path: vec![start, meet],
                    next_wp: 1,
                    speed_mps: speed,
                },
                script: Script::None,
                dark: false,
                cruise_mps: speed,
                port: 0,
            });
        }
        truth.events.push(LabeledEvent {
            kind: EventKind::Rendezvous,
            objects: vec![
                ObjectId((config.n_vessels + 2 * p) as u64),
                ObjectId((config.n_vessels + 2 * p + 1) as u64),
            ],
            // The true interval is refined below once both arrive; scripted
            // dwell gives a good approximation.
            interval: TimeInterval::new(t_meet, t_meet + dwell_ms),
            location: meet,
        });
        // Store dwell plan: encode via Loiter activity switch at arrival.
        // Arrival is handled in the tick loop: when a rendezvous vessel
        // exhausts its path it loiters at the meeting point until
        // t_meet + dwell, then sails off on a fresh bearing.
        let _ = dwell_ms;
    }
    let rendezvous_dwell_until: Vec<TimeMs> = truth.events.iter().map(|e| e.interval.end).collect();

    let mut trajectories: Vec<Trajectory> = states.iter().map(|s| Trajectory::new(s.id)).collect();
    let mut reports: Vec<ObservedReport> = Vec::new();
    let speed_phase: Vec<f64> = (0..total_vessels)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();

    for step in 0..n_ticks {
        let now = TimeMs(step * tick);
        let dt_s = tick as f64 / 1000.0;
        for (vi, st) in states.iter_mut().enumerate() {
            // --- scripted anomaly transitions ---
            match st.script {
                Script::Loiter { start, dur_ms } if now >= start => {
                    if matches!(st.activity, Activity::Sail { .. }) {
                        truth.events.push(LabeledEvent {
                            kind: EventKind::Loitering,
                            objects: vec![st.id],
                            interval: TimeInterval::new(now, now + dur_ms),
                            location: st.pos,
                        });
                        st.activity = Activity::Loiter {
                            center: st.pos,
                            until: now + dur_ms,
                        };
                        st.script = Script::None;
                    }
                }
                Script::Gap { start, dur_ms } if now >= start && !st.dark => {
                    if matches!(st.activity, Activity::Sail { .. }) {
                        truth.events.push(LabeledEvent {
                            kind: EventKind::DarkActivity,
                            objects: vec![st.id],
                            interval: TimeInterval::new(now, now + dur_ms),
                            location: st.pos,
                        });
                        st.dark = true;
                        st.script = Script::Drift {
                            // Reuse the script slot to remember when the gap
                            // ends; vessel keeps sailing while dark.
                            start: now + dur_ms,
                            dur_ms: 0,
                        };
                    }
                }
                Script::Drift { start, dur_ms } if dur_ms == 0 && now >= start && st.dark => {
                    st.dark = false;
                    st.script = Script::None;
                }
                Script::Drift { start, dur_ms } if dur_ms > 0 && now >= start => {
                    if matches!(st.activity, Activity::Sail { .. }) {
                        truth.events.push(LabeledEvent {
                            kind: EventKind::Drifting,
                            objects: vec![st.id],
                            interval: TimeInterval::new(now, now + dur_ms),
                            location: st.pos,
                        });
                        st.activity = Activity::Drift {
                            bearing: rng.gen_range(0.0..360.0),
                            until: now + dur_ms,
                        };
                        st.script = Script::None;
                    }
                }
                _ => {}
            }

            // --- kinematic update ---
            match &mut st.activity {
                Activity::Sail {
                    path,
                    next_wp,
                    speed_mps,
                } => {
                    let wobble = 1.0 + 0.06 * (now.as_secs_f64() / 600.0 + speed_phase[vi]).sin();
                    let mut remaining = *speed_mps * wobble * dt_s;
                    st.speed = *speed_mps * wobble;
                    st.nav = NavStatus::UnderWay;
                    while remaining > 0.0 && *next_wp < path.len() {
                        let target = path[*next_wp];
                        let d = st.pos.haversine_m(&target);
                        if d <= remaining {
                            st.pos = target;
                            remaining -= d;
                            *next_wp += 1;
                        } else {
                            st.heading = st.pos.bearing_deg(&target);
                            st.pos = st.pos.destination(st.heading, remaining);
                            remaining = 0.0;
                        }
                    }
                    if *next_wp >= path.len() {
                        // Arrived. Rendezvous actors dwell at the meeting
                        // point; fleet vessels moor in port.
                        let is_rdv = vi >= config.n_vessels;
                        if is_rdv {
                            let pair = (vi - config.n_vessels) / 2;
                            let until = rendezvous_dwell_until
                                .get(pair)
                                .copied()
                                .unwrap_or(now + 1_800_000);
                            if until > now {
                                st.activity = Activity::Loiter {
                                    center: st.pos,
                                    until,
                                };
                            } else {
                                // Dwell over: head off on a fresh bearing.
                                let away = st.pos.destination(rng.gen_range(0.0..360.0), 150_000.0);
                                st.activity = Activity::Sail {
                                    path: vec![st.pos, away],
                                    next_wp: 1,
                                    speed_mps: st.cruise_mps,
                                };
                            }
                        } else {
                            let dwell = rng.gen_range(20..90) * 60_000;
                            st.activity = Activity::Moor { until: now + dwell };
                            st.nav = NavStatus::Moored;
                            st.speed = 0.0;
                        }
                    }
                }
                Activity::Moor { until } => {
                    st.speed = 0.0;
                    st.nav = NavStatus::Moored;
                    if now >= *until {
                        let (path, dest) = pick_voyage(&world, st.port, &mut rng);
                        st.port = dest;
                        st.nav = NavStatus::UnderWay;
                        st.activity = Activity::Sail {
                            path,
                            next_wp: 1,
                            speed_mps: st.cruise_mps,
                        };
                    }
                }
                Activity::Loiter { center, until } => {
                    // Slow meander constrained to ~600 m around the centre.
                    let is_rdv = vi >= config.n_vessels;
                    st.speed = rng.gen_range(0.2..1.4);
                    st.nav = if is_rdv {
                        NavStatus::Fishing
                    } else {
                        NavStatus::UnderWay
                    };
                    let pull = st.pos.haversine_m(center) / 600.0;
                    let bearing = if pull > 1.0 {
                        st.pos.bearing_deg(center)
                    } else {
                        rng.gen_range(0.0..360.0)
                    };
                    st.heading = bearing;
                    st.pos = st.pos.destination(bearing, st.speed * dt_s);
                    if now >= *until {
                        let is_rdv = vi >= config.n_vessels;
                        let next = if is_rdv {
                            let away = st.pos.destination(rng.gen_range(0.0..360.0), 150_000.0);
                            Activity::Sail {
                                path: vec![st.pos, away],
                                next_wp: 1,
                                speed_mps: st.cruise_mps,
                            }
                        } else {
                            // Resume towards the destination port.
                            let dest = world.ports[st.port].location;
                            Activity::Sail {
                                path: vec![st.pos, dest],
                                next_wp: 1,
                                speed_mps: st.cruise_mps,
                            }
                        };
                        st.activity = next;
                        st.nav = NavStatus::UnderWay;
                    }
                }
                Activity::Drift { bearing, until } => {
                    st.speed = 0.6 + 0.2 * gaussian(&mut rng).abs();
                    st.heading = *bearing;
                    st.nav = NavStatus::UnderWay;
                    st.pos = st.pos.destination(*bearing, st.speed * dt_s);
                    if now >= *until {
                        let dest = world.ports[st.port].location;
                        st.activity = Activity::Sail {
                            path: vec![st.pos, dest],
                            next_wp: 1,
                            speed_mps: st.cruise_mps,
                        };
                    }
                }
            }

            // --- record truth & emit observation ---
            let true_report = PositionReport::maritime(
                st.id,
                now,
                st.pos,
                st.speed,
                datacron_geo::units::normalize_deg(st.heading),
                SourceId::AIS_TERRESTRIAL,
                st.nav,
            );
            trajectories[vi].push(TrajPoint::from(&true_report));
            if !st.dark {
                if let Some((obs, delivery)) = config.noise.observe(&true_report, &mut rng) {
                    reports.push(ObservedReport {
                        report: obs,
                        delivery_ms: delivery,
                    });
                }
            }
        }
    }

    reports.sort_by_key(|r| (r.report.time, r.report.object));
    MaritimeData {
        reports,
        true_trajectories: trajectories,
        vessels,
        truth,
        world,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MaritimeConfig {
        MaritimeConfig {
            seed: 11,
            n_vessels: 12,
            duration_ms: TimeMs::from_hours(3).millis(),
            report_interval_ms: 30_000,
            noise: NoiseModel::none(),
            frac_loitering: 0.25,
            frac_gap: 0.17,
            frac_drifting: 0.09,
            n_rendezvous_pairs: 1,
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = small_config();
        let a = generate_maritime(&cfg);
        let b = generate_maritime(&cfg);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.truth.events.len(), b.truth.events.len());
        assert_eq!(a.vessels, b.vessels);
    }

    #[test]
    fn reports_sorted_and_plausible() {
        let data = generate_maritime(&small_config());
        assert!(!data.reports.is_empty());
        for w in data.reports.windows(2) {
            assert!(w[0].report.time <= w[1].report.time);
        }
        for r in &data.reports {
            assert!(r.report.is_plausible(), "implausible report {:?}", r.report);
            assert!(r.delivery_ms >= r.report.time.millis());
        }
    }

    #[test]
    fn scripted_events_present() {
        let data = generate_maritime(&small_config());
        // 25% of 12 = 3 loiterers, 17% = 2 gaps, 9% = 1 drifter, 1 rendezvous.
        assert_eq!(data.truth.events_of(EventKind::Loitering).count(), 3);
        assert_eq!(data.truth.events_of(EventKind::DarkActivity).count(), 2);
        assert_eq!(data.truth.events_of(EventKind::Drifting).count(), 1);
        assert_eq!(data.truth.events_of(EventKind::Rendezvous).count(), 1);
    }

    #[test]
    fn gap_suppresses_reports() {
        let data = generate_maritime(&small_config());
        for gap in data.truth.events_of(EventKind::DarkActivity) {
            let obj = gap.objects[0];
            // Strictly inside the gap (one tick of slack at each edge).
            let inner = TimeInterval::new(gap.interval.start + 30_000, gap.interval.end - 30_000);
            let count = data
                .reports
                .iter()
                .filter(|r| r.report.object == obj && inner.contains(r.report.time))
                .count();
            assert_eq!(count, 0, "reports leaked during AIS gap");
        }
    }

    #[test]
    fn rendezvous_vessels_converge() {
        let data = generate_maritime(&small_config());
        let rdv = data
            .truth
            .events_of(EventKind::Rendezvous)
            .next()
            .unwrap()
            .clone();
        let [a, b] = [rdv.objects[0], rdv.objects[1]];
        let ta = &data.true_trajectories[a.raw() as usize];
        let tb = &data.true_trajectories[b.raw() as usize];
        // Mid-dwell the two vessels are within 1.5 km of each other.
        let mid = TimeMs((rdv.interval.start.millis() + rdv.interval.end.millis()) / 2);
        let pa = ta.position_at(mid);
        let pb = tb.position_at(mid);
        if let (Some(pa), Some(pb)) = (pa, pb) {
            let d = pa.haversine_m(&pb);
            assert!(d < 1_500.0, "rendezvous vessels {d} m apart");
        } else {
            panic!("rendezvous trajectories do not cover the dwell");
        }
    }

    #[test]
    fn loiterers_stay_confined() {
        let data = generate_maritime(&small_config());
        for ev in data.truth.events_of(EventKind::Loitering) {
            let tr = &data.true_trajectories[ev.objects[0].raw() as usize];
            let inside = tr.slice_time(&ev.interval);
            for p in inside.points() {
                let d = p.position().haversine_m(&ev.location);
                assert!(d < 2_500.0, "loiterer strayed {d} m");
            }
        }
    }

    #[test]
    fn trajectories_cover_duration() {
        let cfg = small_config();
        let data = generate_maritime(&cfg);
        let expected = (cfg.duration_ms / cfg.report_interval_ms) as usize;
        for tr in &data.true_trajectories {
            assert_eq!(tr.len(), expected);
        }
    }

    #[test]
    fn vessel_ids_match_indices() {
        let data = generate_maritime(&small_config());
        for (i, v) in data.vessels.iter().enumerate() {
            assert_eq!(v.object, ObjectId(i as u64));
            assert_eq!(v.mmsi, 237_000_000 + i as u32);
        }
    }
}
