//! Two overlapping, independently noisy vessel registries.
//!
//! Link discovery (the paper's data integration/interlinking component) is
//! evaluated on record pairs from heterogeneous sources. This module forges
//! the scenario: source A knows the fleet exactly; source B covers a subset
//! under different identifiers, with typographic noise in the names and
//! jittered last-known positions, plus distractor vessels that exist only
//! in B. The true `A↔B` identity pairs are returned as ground truth.

use crate::maritime::MaritimeData;
use crate::noise::gaussian;
use datacron_geo::GeoPoint;
use datacron_model::{GroundTruth, LinkPair, ObjectId, VesselInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the registry forge.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RegistryConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of fleet vessels that also appear in source B.
    pub overlap: f64,
    /// Number of distractor vessels existing only in B.
    pub n_distractors: usize,
    /// Standard deviation of the position jitter between the two sources'
    /// last-known positions, metres.
    pub pos_jitter_m: f64,
    /// Number of typographic edits applied to each B-side name.
    pub name_edits: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            seed: 99,
            overlap: 0.7,
            n_distractors: 15,
            pos_jitter_m: 400.0,
            name_edits: 1,
        }
    }
}

/// One registry record: static info plus a last-known position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryRecord {
    /// Static vessel metadata (ids are source-local).
    pub info: VesselInfo,
    /// Last-known position reported to this source.
    pub last_pos: GeoPoint,
}

/// The two registries plus ground-truth links.
#[derive(Debug, Clone)]
pub struct RegistryData {
    /// Source A records (authoritative).
    pub source_a: Vec<RegistryRecord>,
    /// Source B records (noisy subset + distractors, different ids).
    pub source_b: Vec<RegistryRecord>,
    /// True identity links between A and B object ids.
    pub truth: GroundTruth,
}

/// Applies one random typographic edit to a name.
fn edit_name(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.is_empty() {
        return name.to_string();
    }
    match rng.gen_range(0..4u8) {
        // Delete a character.
        0 => {
            let i = rng.gen_range(0..chars.len());
            chars
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c)
                .collect()
        }
        // Swap two adjacent characters.
        1 if chars.len() >= 2 => {
            let i = rng.gen_range(0..chars.len() - 1);
            let mut c = chars.clone();
            c.swap(i, i + 1);
            c.into_iter().collect()
        }
        // Duplicate a character.
        2 => {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            c.insert(i, chars[i]);
            c.into_iter().collect()
        }
        // Replace a character with a neighbour letter.
        _ => {
            let i = rng.gen_range(0..chars.len());
            let mut c = chars.clone();
            let r = c[i];
            c[i] = if r.is_ascii_alphabetic() {
                (((r as u8 - b'A' + 1) % 26) + b'A') as char
            } else {
                'X'
            };
            c.into_iter().collect()
        }
    }
}

/// Forges the two registries from a maritime scenario's fleet.
///
/// Source-B object ids start at `100_000` so they never collide with fleet
/// ids; the ground truth maps them back.
pub fn generate_registries(data: &MaritimeData, config: &RegistryConfig) -> RegistryData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let b_base: u64 = 100_000;

    let last_pos = |idx: usize| -> GeoPoint {
        data.true_trajectories[idx]
            .last()
            .map(|p| p.position())
            .unwrap_or(GeoPoint::new(24.0, 37.0))
    };

    let source_a: Vec<RegistryRecord> = data
        .vessels
        .iter()
        .enumerate()
        .map(|(i, v)| RegistryRecord {
            info: v.clone(),
            last_pos: last_pos(i),
        })
        .collect();

    let mut source_b = Vec::new();
    let mut truth = GroundTruth::default();
    let mut b_next = b_base;
    for (i, v) in data.vessels.iter().enumerate() {
        if rng.gen::<f64>() >= config.overlap {
            continue;
        }
        let mut name = v.name.clone();
        for _ in 0..config.name_edits {
            name = edit_name(&name, &mut rng);
        }
        let jitter_m = gaussian(&mut rng).abs() * config.pos_jitter_m;
        let pos = last_pos(i).destination(rng.gen_range(0.0..360.0), jitter_m);
        let b_id = ObjectId(b_next);
        b_next += 1;
        source_b.push(RegistryRecord {
            info: VesselInfo {
                object: b_id,
                // Source B lacks MMSI (different keying scheme) — model it
                // as 0 so joins cannot cheat on the shared key.
                mmsi: 0,
                name,
                ship_type: v.ship_type,
                length_m: v.length_m + (gaussian(&mut rng) * 2.0) as f32,
                flag: v.flag.clone(),
            },
            last_pos: pos,
        });
        truth.links.push(LinkPair {
            left: v.object,
            right: b_id,
        });
    }

    // Distractors: plausible vessels anywhere in the region, no A match.
    for d in 0..config.n_distractors {
        let pos = GeoPoint::new(rng.gen_range(22.5..29.0), rng.gen_range(35.0..41.0));
        source_b.push(RegistryRecord {
            info: VesselInfo {
                object: ObjectId(b_base + 50_000 + d as u64),
                mmsi: 0,
                name: crate::maritime::random_ship_name(&mut rng),
                ship_type: 70,
                length_m: rng.gen_range(60.0..250.0),
                flag: "PA".into(),
            },
            last_pos: pos,
        });
    }

    RegistryData {
        source_a,
        source_b,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maritime::{generate_maritime, MaritimeConfig};
    use crate::noise::NoiseModel;
    use datacron_geo::TimeMs;

    fn data() -> MaritimeData {
        generate_maritime(&MaritimeConfig {
            seed: 5,
            n_vessels: 30,
            duration_ms: TimeMs::from_hours(1).millis(),
            report_interval_ms: 60_000,
            noise: NoiseModel::none(),
            frac_loitering: 0.0,
            frac_gap: 0.0,
            frac_drifting: 0.0,
            n_rendezvous_pairs: 0,
        })
    }

    #[test]
    fn overlap_and_truth_consistent() {
        let reg = generate_registries(&data(), &RegistryConfig::default());
        assert_eq!(reg.source_a.len(), 30);
        // Each truth link joins an A id to a B id present in the registries.
        for link in &reg.truth.links {
            assert!(reg.source_a.iter().any(|r| r.info.object == link.left));
            assert!(reg.source_b.iter().any(|r| r.info.object == link.right));
        }
        // B contains links + distractors.
        assert_eq!(
            reg.source_b.len(),
            reg.truth.links.len() + RegistryConfig::default().n_distractors
        );
        // Overlap fraction roughly honoured.
        let frac = reg.truth.links.len() as f64 / 30.0;
        assert!((0.4..=0.95).contains(&frac), "overlap {frac}");
    }

    #[test]
    fn b_side_names_similar_but_perturbed() {
        let reg = generate_registries(&data(), &RegistryConfig::default());
        let mut identical = 0;
        for link in &reg.truth.links {
            let a = &reg
                .source_a
                .iter()
                .find(|r| r.info.object == link.left)
                .unwrap()
                .info
                .name;
            let b = &reg
                .source_b
                .iter()
                .find(|r| r.info.object == link.right)
                .unwrap()
                .info
                .name;
            // One edit keeps the lengths within 1.
            assert!((a.len() as i64 - b.len() as i64).abs() <= 1, "{a} vs {b}");
            if a == b {
                identical += 1;
            }
        }
        // Most names must actually differ (an edit can be a no-op swap of
        // equal characters, so allow a few).
        assert!(identical * 3 < reg.truth.links.len().max(1) * 2);
    }

    #[test]
    fn positions_jittered_not_teleported() {
        let cfg = RegistryConfig::default();
        let d = data();
        let reg = generate_registries(&d, &cfg);
        for link in &reg.truth.links {
            let a = reg
                .source_a
                .iter()
                .find(|r| r.info.object == link.left)
                .unwrap();
            let b = reg
                .source_b
                .iter()
                .find(|r| r.info.object == link.right)
                .unwrap();
            let dist = a.last_pos.haversine_m(&b.last_pos);
            assert!(dist < cfg.pos_jitter_m * 6.0, "jitter {dist} m");
        }
    }

    #[test]
    fn deterministic() {
        let d = data();
        let r1 = generate_registries(&d, &RegistryConfig::default());
        let r2 = generate_registries(&d, &RegistryConfig::default());
        assert_eq!(r1.source_b, r2.source_b);
        assert_eq!(r1.truth.links, r2.truth.links);
    }

    #[test]
    fn name_edit_changes_at_most_one_position() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let edited = edit_name("BLUE STAR", &mut rng);
            assert!((edited.len() as i64 - 9).abs() <= 1);
        }
    }
}
