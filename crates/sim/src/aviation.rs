//! The aviation traffic generator (3D).
//!
//! Flights depart through the scenario window, fly great-circle routes with
//! climb / cruise / descent profiles, and a configurable share performs a
//! holding pattern before descent (planted as ground truth).

use crate::noise::NoiseModel;
use crate::world::{european_airspace, AviationWorld};
use datacron_geo::{GeoPoint, GeoPoint3, TimeInterval, TimeMs};
use datacron_model::{
    EventKind, FlightInfo, GroundTruth, LabeledEvent, ObjectId, PositionReport, SourceId,
    TrajPoint, Trajectory,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::maritime::ObservedReport;

/// Configuration of an aviation scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AviationConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of flights departing during the window.
    pub n_flights: usize,
    /// Scenario duration in milliseconds.
    pub duration_ms: i64,
    /// Surveillance reporting interval in milliseconds (ADS-B ≈ 1–10 s).
    pub report_interval_ms: i64,
    /// Observation noise model.
    pub noise: NoiseModel,
    /// Fraction of flights that fly a holding pattern before descent.
    pub frac_holding: f64,
}

impl Default for AviationConfig {
    fn default() -> Self {
        Self {
            seed: 13,
            n_flights: 40,
            duration_ms: TimeMs::from_hours(4).millis(),
            report_interval_ms: 5_000,
            noise: NoiseModel {
                pos_sigma_m: 25.0,
                speed_sigma_mps: 1.0,
                heading_sigma_deg: 1.0,
                dropout_prob: 0.01,
                outlier_prob: 0.0005,
                outlier_offset_m: 10_000.0,
                max_delay_ms: 1_500,
            },
            frac_holding: 0.15,
        }
    }
}

/// The output of an aviation scenario run.
#[derive(Debug, Clone)]
pub struct AviationData {
    /// Observed reports, sorted by event time.
    pub reports: Vec<ObservedReport>,
    /// Noise-free true 3D trajectories (altitude in [`TrajPoint::alt_m`]).
    pub true_trajectories: Vec<Trajectory>,
    /// Flight metadata.
    pub flights: Vec<FlightInfo>,
    /// Planted behaviours (holding patterns).
    pub truth: GroundTruth,
    /// The airspace the scenario ran in.
    pub world: AviationWorld,
}

/// Flight phases of the vertical profile.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Climb,
    Cruise,
    Hold,
    Descent,
    Done,
}

struct FlightState {
    id: ObjectId,
    dest: GeoPoint,
    dest_elev: f64,
    depart: TimeMs,
    cruise_alt_m: f64,
    cruise_mps: f64,
    climb_mps: f64,
    /// Holding script: `(radius_m, duration_ms)` when scripted.
    holding: Option<(f64, i64)>,
    // --- dynamic ---
    phase: Phase,
    pos: GeoPoint3,
    heading: f64,
    hold_center: Option<GeoPoint>,
    hold_until: TimeMs,
    hold_angle: f64,
    hold_logged: bool,
}

/// Distance from destination at which descent begins, for the given cruise
/// altitude and a standard 3-degree descent path.
fn descent_distance_m(cruise_alt_m: f64, dest_elev: f64) -> f64 {
    (cruise_alt_m - dest_elev).max(0.0) / (3.0f64.to_radians().tan())
}

/// Generates an aviation scenario. Deterministic in `config`.
pub fn generate_aviation(config: &AviationConfig) -> AviationData {
    let world = european_airspace();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tick = config.report_interval_ms.max(1000);
    let n_ticks = (config.duration_ms / tick).max(1);
    let n_holding = (config.n_flights as f64 * config.frac_holding).round() as usize;

    let mut flights = Vec::with_capacity(config.n_flights);
    let mut states: Vec<FlightState> = Vec::with_capacity(config.n_flights);
    for i in 0..config.n_flights {
        let o = rng.gen_range(0..world.airports.len());
        let mut d = rng.gen_range(0..world.airports.len());
        while d == o {
            d = rng.gen_range(0..world.airports.len());
        }
        let (orig, dest) = (&world.airports[o], &world.airports[d]);
        let callsign = format!(
            "{}{}",
            ["AEE", "DLH", "AFR", "BAW", "THY", "ITY"][rng.gen_range(0..6)],
            rng.gen_range(100..9999)
        );
        flights.push(FlightInfo {
            object: ObjectId(i as u64),
            icao24: 0x440000 + i as u32,
            callsign,
            origin: orig.icao.clone(),
            destination: dest.icao.clone(),
        });
        let depart = TimeMs(rng.gen_range(0..(config.duration_ms / 2).max(1)));
        let holding = (i < n_holding).then(|| {
            (
                rng.gen_range(6_000.0..12_000.0),
                rng.gen_range(8..20) * 60_000,
            )
        });
        states.push(FlightState {
            id: ObjectId(i as u64),
            dest: dest.location,
            dest_elev: dest.elevation_m,
            depart,
            cruise_alt_m: rng.gen_range(9_500.0..11_800.0),
            cruise_mps: rng.gen_range(210.0..255.0),
            climb_mps: rng.gen_range(8.0..14.0),
            holding,
            phase: Phase::Climb,
            pos: GeoPoint3::new(orig.location.lon, orig.location.lat, orig.elevation_m),
            heading: orig.location.bearing_deg(&dest.location),
            hold_center: None,
            hold_until: TimeMs(0),
            hold_angle: 0.0,
            hold_logged: false,
        });
    }

    let mut truth = GroundTruth::default();
    let mut trajectories: Vec<Trajectory> = states.iter().map(|s| Trajectory::new(s.id)).collect();
    let mut reports: Vec<ObservedReport> = Vec::new();

    for step in 0..n_ticks {
        let now = TimeMs(step * tick);
        let dt_s = tick as f64 / 1000.0;
        for st in states.iter_mut() {
            if now < st.depart || st.phase == Phase::Done {
                continue;
            }
            let dist_to_dest = st.pos.horiz.haversine_m(&st.dest);
            let descent_at = descent_distance_m(st.cruise_alt_m, st.dest_elev);

            // Phase transitions.
            match st.phase {
                Phase::Climb if st.pos.alt_m >= st.cruise_alt_m => st.phase = Phase::Cruise,
                Phase::Cruise | Phase::Climb
                    if dist_to_dest <= descent_at + st.cruise_mps * dt_s =>
                {
                    // Reached top of descent: hold first when scripted.
                    if let Some((radius, dur)) = st.holding.take() {
                        st.phase = Phase::Hold;
                        st.hold_center = Some(st.pos.horiz.destination(st.heading, radius));
                        st.hold_until = now + dur;
                        st.hold_angle = 0.0;
                        let _ = radius;
                    } else {
                        st.phase = Phase::Descent;
                    }
                }
                Phase::Hold if now >= st.hold_until => st.phase = Phase::Descent,
                Phase::Descent if st.pos.alt_m <= st.dest_elev + 5.0 && dist_to_dest < 3_000.0 => {
                    st.phase = Phase::Done
                }
                _ => {}
            }

            // Kinematics.
            let mut vspeed = 0.0;
            let mut gspeed = st.cruise_mps;
            match st.phase {
                Phase::Climb => {
                    vspeed = st.climb_mps;
                    gspeed = st.cruise_mps * 0.8;
                    st.heading = st.pos.horiz.bearing_deg(&st.dest);
                    st.pos.horiz = st.pos.horiz.destination(st.heading, gspeed * dt_s);
                    st.pos.alt_m = (st.pos.alt_m + vspeed * dt_s).min(st.cruise_alt_m);
                }
                Phase::Cruise => {
                    st.heading = st.pos.horiz.bearing_deg(&st.dest);
                    st.pos.horiz = st.pos.horiz.destination(st.heading, gspeed * dt_s);
                }
                Phase::Hold => {
                    if !st.hold_logged {
                        truth.events.push(LabeledEvent {
                            kind: EventKind::HoldingPattern,
                            objects: vec![st.id],
                            interval: TimeInterval::new(now, st.hold_until),
                            location: st.hold_center.unwrap_or(st.pos.horiz),
                        });
                        st.hold_logged = true;
                    }
                    // Fly a circle of ~7 km radius around the hold centre.
                    let center = st.hold_center.unwrap_or(st.pos.horiz);
                    let radius = 7_000.0;
                    gspeed = st.cruise_mps * 0.65;
                    let omega = gspeed / radius; // rad/s
                    st.hold_angle += omega * dt_s;
                    let bearing = st.hold_angle.to_degrees() % 360.0;
                    st.pos.horiz = center.destination(bearing, radius);
                    st.heading = datacron_geo::units::normalize_deg(bearing + 90.0);
                }
                Phase::Descent => {
                    vspeed = -(st.cruise_mps * 3.0f64.to_radians().tan());
                    gspeed = st.cruise_mps * 0.85;
                    st.heading = st.pos.horiz.bearing_deg(&st.dest);
                    let step_m = (gspeed * dt_s).min(dist_to_dest.max(1.0));
                    st.pos.horiz = st.pos.horiz.destination(st.heading, step_m);
                    st.pos.alt_m = (st.pos.alt_m + vspeed * dt_s).max(st.dest_elev);
                }
                Phase::Done => {}
            }
            if st.phase == Phase::Done {
                continue;
            }

            let true_report = PositionReport::aviation(
                st.id,
                now,
                st.pos,
                gspeed,
                st.heading,
                vspeed,
                SourceId::ADSB,
            );
            trajectories[st.id.raw() as usize].push(TrajPoint::from(&true_report));
            if let Some((obs, delivery)) = config.noise.observe(&true_report, &mut rng) {
                reports.push(ObservedReport {
                    report: obs,
                    delivery_ms: delivery,
                });
            }
        }
    }

    reports.sort_by_key(|r| (r.report.time, r.report.object));
    AviationData {
        reports,
        true_trajectories: trajectories,
        flights,
        truth,
        world,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AviationConfig {
        AviationConfig {
            seed: 21,
            n_flights: 10,
            duration_ms: TimeMs::from_hours(3).millis(),
            report_interval_ms: 10_000,
            noise: NoiseModel::none(),
            frac_holding: 0.3,
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = small_config();
        let a = generate_aviation(&cfg);
        let b = generate_aviation(&cfg);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.flights, b.flights);
    }

    #[test]
    fn flights_climb_then_descend() {
        let data = generate_aviation(&small_config());
        let mut any_full_profile = false;
        for tr in &data.true_trajectories {
            if tr.is_empty() {
                continue;
            }
            let max_alt = tr.points().iter().map(|p| p.alt_m).fold(f64::MIN, f64::max);
            let first_alt = tr.first().unwrap().alt_m;
            let last_alt = tr.last().unwrap().alt_m;
            assert!(max_alt <= 12_000.0, "altitude ceiling violated: {max_alt}");
            if max_alt > 9_000.0 && last_alt < 1_000.0 {
                any_full_profile = true;
                assert!(first_alt < 1_000.0, "takeoff from altitude");
            }
        }
        assert!(any_full_profile, "no flight completed a full profile");
    }

    #[test]
    fn holding_patterns_planted_and_flown() {
        let data = generate_aviation(&small_config());
        let holds: Vec<_> = data.truth.events_of(EventKind::HoldingPattern).collect();
        assert!(!holds.is_empty(), "no holding events planted");
        for h in &holds {
            let tr = &data.true_trajectories[h.objects[0].raw() as usize];
            let during = tr.slice_time(&h.interval);
            if during.len() < 3 {
                continue;
            }
            // During the hold the aircraft stays near the hold centre.
            for p in during.points() {
                let d = p.position().haversine_m(&h.location);
                assert!(d < 12_000.0, "holding aircraft strayed {d} m");
            }
        }
    }

    #[test]
    fn reports_are_3d_and_plausible() {
        let data = generate_aviation(&small_config());
        assert!(!data.reports.is_empty());
        let mut airborne = 0;
        for r in &data.reports {
            assert!(r.report.is_plausible(), "{:?}", r.report);
            if r.report.alt_m > 1000.0 {
                airborne += 1;
            }
        }
        assert!(airborne > data.reports.len() / 3, "mostly ground reports");
    }

    #[test]
    fn descent_distance_math() {
        // From 10 km altitude a 3-degree slope needs ~190 km.
        let d = descent_distance_m(10_000.0, 0.0);
        assert!((d - 190_811.0).abs() < 1_000.0, "d = {d}");
        assert_eq!(descent_distance_m(0.0, 100.0), 0.0);
    }

    #[test]
    fn flight_ids_sequential() {
        let data = generate_aviation(&small_config());
        for (i, f) in data.flights.iter().enumerate() {
            assert_eq!(f.object, ObjectId(i as u64));
            assert_ne!(f.origin, f.destination);
        }
    }
}
