//! Synthetic surveillance worlds for the datAcron reproduction.
//!
//! The datAcron project evaluated on operational AIS and ATM surveillance
//! feeds that cannot be redistributed. This crate substitutes them with
//! deterministic synthetic worlds that exercise the same code paths:
//!
//! * a **maritime world** ([`MaritimeConfig`] / [`generate_maritime`]) —
//!   vessels sailing shipping lanes between ports, with scripted anomalous
//!   behaviours (loitering, rendezvous, AIS gaps, drifting) planted as
//!   ground truth;
//! * an **aviation world** ([`AviationConfig`] / [`generate_aviation`]) —
//!   flights between airports with climb/cruise/descent profiles and
//!   scripted holding patterns;
//! * a **measurement model** ([`NoiseModel`]) — position jitter, kinematic
//!   noise, dropouts, outliers and out-of-order delivery;
//! * **registries** ([`registry`]) — two overlapping, independently noisy
//!   vessel registries with true identity links, feeding link discovery;
//! * a **weather grid** ([`weather`]) — a smooth synthetic wind field used
//!   as the archival enrichment source.
//!
//! Everything is seeded; the same config always yields identical data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aviation;
pub mod maritime;
pub mod noise;
pub mod registry;
pub mod weather;
pub mod world;

pub use aviation::{generate_aviation, AviationConfig, AviationData};
pub use maritime::{generate_maritime, MaritimeConfig, MaritimeData};
pub use noise::NoiseModel;
pub use registry::{generate_registries, RegistryConfig, RegistryData};
pub use weather::WeatherGrid;
pub use world::{aegean_world, european_airspace, Airport, AviationWorld, MaritimeWorld, Port};
