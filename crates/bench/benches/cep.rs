//! E8 timing: event recognition throughput — detectors and the NFA engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacron_bench::{maritime_small, reports_of};
use datacron_cep::{
    CpaDetector, LoiteringDetector, Pattern, PatternElem, RendezvousDetector, Runs,
};
use datacron_geo::TimeMs;
use std::hint::black_box;

fn bench_cep(c: &mut Criterion) {
    let data = maritime_small();
    let reports = reports_of(&data);
    let mut group = c.benchmark_group("cep");
    group.throughput(Throughput::Elements(reports.len() as u64));

    group.bench_function("loitering", |b| {
        b.iter(|| {
            let mut det = LoiteringDetector::default();
            let mut n = 0usize;
            for r in &reports {
                if det.update(black_box(r)).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });

    group.bench_function("rendezvous", |b| {
        b.iter(|| {
            let mut det = RendezvousDetector::new(data.world.region);
            let mut n = 0usize;
            for r in &reports {
                n += det.update(black_box(r)).len();
            }
            black_box(n)
        })
    });

    group.bench_function("cpa", |b| {
        b.iter(|| {
            let mut det = CpaDetector::default();
            let mut n = 0usize;
            for r in &reports {
                n += det.update(black_box(r)).len();
            }
            black_box(n)
        })
    });
    group.finish();

    // NFA pattern-count sweep (A5).
    let mut group = c.benchmark_group("nfa");
    let events: Vec<u32> = (0..50_000u32).map(|i| i % 10).collect();
    group.throughput(Throughput::Elements(events.len() as u64));
    for n_patterns in [1usize, 4, 8] {
        group.bench_function(&format!("patterns/{n_patterns}"), |b| {
            b.iter(|| {
                let mut runs: Vec<Runs<u32>> = (0..n_patterns)
                    .map(|i| {
                        Runs::new(Pattern::new(
                            format!("p{i}"),
                            vec![
                                PatternElem::single(move |e: &u32| *e == i as u32),
                                PatternElem::single(move |e: &u32| *e == (i + 1) as u32),
                            ],
                            60_000,
                        ))
                    })
                    .collect();
                let mut matches = 0usize;
                for (i, e) in events.iter().enumerate() {
                    for r in &mut runs {
                        matches += r.on_event(TimeMs(i as i64 * 10), black_box(e)).len();
                    }
                }
                black_box(matches)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cep);
criterion_main!(benches);
