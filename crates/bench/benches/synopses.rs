//! E1 timing: in-situ cleansing, compression and critical-point detection.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacron_bench::{maritime_small, reports_of};
use datacron_synopses::{Cleanser, CriticalPointDetector, DeadReckoningCompressor, SynopsisConfig};
use std::hint::black_box;

fn bench_synopses(c: &mut Criterion) {
    let data = maritime_small();
    let reports = reports_of(&data);
    let mut group = c.benchmark_group("synopses");
    group.throughput(Throughput::Elements(reports.len() as u64));

    group.bench_function("cleanse", |b| {
        b.iter(|| {
            let mut cleanser = Cleanser::default();
            let mut kept = 0usize;
            for r in &reports {
                if cleanser.check(black_box(r)) {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });

    for threshold in [50.0, 100.0, 250.0] {
        group.bench_function(&format!("dead_reckoning/{}", threshold as u64), |b| {
            b.iter(|| {
                let mut comp = DeadReckoningCompressor::new(threshold);
                let mut kept = 0usize;
                for r in &reports {
                    if comp.check(black_box(r)) {
                        kept += 1;
                    }
                }
                black_box(kept)
            })
        });
    }

    group.bench_function("critical_points", |b| {
        b.iter(|| {
            let mut det = CriticalPointDetector::new(SynopsisConfig::default());
            let mut out = Vec::new();
            for r in &reports {
                det.update(black_box(r), &mut out);
            }
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synopses);
criterion_main!(benches);
