//! E11 timing: end-to-end pipeline throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacron_bench::{maritime_small, reports_of};
use datacron_core::{Pipeline, PipelineConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let data = maritime_small();
    let reports = reports_of(&data);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Elements(reports.len() as u64));

    for (name, enable_rdf) in [("full", true), ("analytics_only", false)] {
        group.bench_function(&format!("end_to_end/{name}"), |b| {
            b.iter(|| {
                let mut p = Pipeline::new(PipelineConfig {
                    enable_rdf,
                    ..PipelineConfig::default()
                });
                let mut events = 0usize;
                for r in &reports {
                    events += p.process(black_box(r)).len();
                }
                black_box(events)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
