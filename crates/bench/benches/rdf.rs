//! E5 timing: triple-store load and query answering, with the partitioning
//! ablation (A2).

use criterion::{criterion_group, criterion_main, Criterion};
use datacron_bench::{maritime_small, reports_of};
use datacron_geo::TimeMs;
use datacron_rdf::{
    execute, parse_query, Graph, HashPartitioner, PartitionedStore, SpatialGridPartitioner,
    TemporalPartitioner,
};
use datacron_transform::RdfMapper;
use std::hint::black_box;

fn build_graph() -> (Graph, datacron_geo::BoundingBox) {
    let data = maritime_small();
    let reports = reports_of(&data);
    let mut graph = Graph::new();
    let mut mapper = RdfMapper::new();
    for v in &data.vessels {
        mapper.map_vessel_info(&mut graph, v);
    }
    for r in &reports {
        mapper.map_report(&mut graph, r, None);
    }
    graph.commit();
    (graph, data.world.region)
}

fn bench_rdf(c: &mut Criterion) {
    let (graph, region) = build_graph();
    let mut group = c.benchmark_group("rdf");

    group.bench_function("bulk_load", |b| {
        let data = maritime_small();
        let reports = reports_of(&data);
        b.iter(|| {
            let mut g = Graph::new();
            let mut m = RdfMapper::new();
            for r in &reports {
                m.map_report(&mut g, black_box(r), None);
            }
            g.commit();
            black_box(g.len())
        })
    });

    let queries = [
        ("q1_lookup", "SELECT ?n WHERE { ?n da:ofMovingObject da:obj/7 }"),
        ("q2_star", "SELECT ?v ?name WHERE { ?v da:name ?name . ?v rdf:type da:Vessel }"),
        ("q4_spatial", "SELECT ?n WHERE { ?n da:hasGeometry ?g . FILTER st_within(?g, 23.2, 37.4, 24.2, 38.4) }"),
        ("q5_temporal", "SELECT ?n WHERE { ?n da:hasTemporalFeature ?t . FILTER t_between(?t, 0, 3600000) }"),
        ("q6_spatiotemporal", "SELECT ?n WHERE { ?n da:hasGeometry ?g . ?n da:hasTemporalFeature ?t . FILTER st_within(?g, 23.2, 37.4, 24.7, 38.9) FILTER t_between(?t, 0, 3600000) }"),
    ];
    for (name, text) in queries {
        let q = parse_query(text).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(execute(&graph, black_box(&q)).0.len()))
        });
    }

    // Partitioning ablation on the spatial query.
    let q = parse_query(queries[2].1).unwrap();
    let stores = vec![
        (
            "hash",
            PartitionedStore::build(&graph, Box::new(HashPartitioner::new(4))),
        ),
        (
            "spatial",
            PartitionedStore::build(
                &graph,
                Box::new(SpatialGridPartitioner::new(4, region, 0.5)),
            ),
        ),
        (
            "temporal",
            PartitionedStore::build(
                &graph,
                Box::new(TemporalPartitioner::new(4, TimeMs(0), 30 * 60_000)),
            ),
        ),
    ];
    for (name, store) in &stores {
        group.bench_function(&format!("partitioned_spatial_query/{name}"), |b| {
            b.iter(|| black_box(store.execute(black_box(&q)).0.rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rdf);
criterion_main!(benches);
