//! E6 timing: forecasting model training and prediction cost.

use criterion::{criterion_group, criterion_main, Criterion};
use datacron_forecast::{DeadReckoningPredictor, MarkovGridModel, Predictor, RouteModel};
use datacron_geo::{Grid, TimeMs};
use std::hint::black_box;

fn tracks() -> Vec<datacron_model::Trajectory> {
    datacron_bench::maritime_small().true_trajectories
}

fn bench_forecast(c: &mut Criterion) {
    let history = tracks();
    let region = datacron_sim::aegean_world().region;
    let mut group = c.benchmark_group("forecast");
    group.sample_size(30);

    group.bench_function("train_markov", |b| {
        b.iter(|| {
            let mut m = MarkovGridModel::new(Grid::new(region, 0.05).unwrap(), 60_000);
            m.train_all(black_box(&history));
            black_box(m.state_count())
        })
    });

    group.bench_function("train_route", |b| {
        b.iter(|| {
            let mut m = RouteModel::new(Grid::new(region, 0.02).unwrap());
            m.train_all(black_box(&history));
            black_box(m.route_count())
        })
    });

    let mut markov = MarkovGridModel::new(Grid::new(region, 0.05).unwrap(), 60_000);
    markov.train_all(&history);
    let mut route = RouteModel::new(Grid::new(region, 0.02).unwrap());
    route.train_all(&history);
    let probe = &history
        .iter()
        .find(|t| t.len() > 30)
        .expect("long track")
        .points()[..20];
    let at = probe.last().unwrap().time + TimeMs::from_mins(20).millis();

    group.bench_function("predict_dead_reckoning", |b| {
        b.iter(|| black_box(DeadReckoningPredictor.predict(black_box(probe), at)))
    });
    group.bench_function("predict_markov_20min", |b| {
        b.iter(|| black_box(markov.predict(black_box(probe), at)))
    });
    group.bench_function("predict_route_20min", |b| {
        b.iter(|| black_box(route.predict(black_box(probe), at)))
    });
    group.finish();
}

criterion_group!(benches, bench_forecast);
criterion_main!(benches);
