//! E17 timing: observability overhead on the serving hot path.
//!
//! Measures the per-operation cost of everything the server adds to a
//! request for observability: a histogram record, a counter increment,
//! opening/closing a trace span, a slow-log offer below the admission
//! floor, and a full registry render (the `metrics` request itself).

use criterion::{criterion_group, criterion_main, Criterion};
use datacron_obs::{ClockSource, MonotonicClock, Registry, SlowLog, Trace};
use datacron_stream::clock::Stopwatch;
use datacron_stream::LatencyHistogram;
use std::hint::black_box;
use std::sync::Arc;

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");

    group.bench_function("histogram_observe", |b| {
        let h = LatencyHistogram::new();
        b.iter(|| {
            let t = Stopwatch::start();
            h.observe(black_box(&t));
        })
    });

    group.bench_function("counter_inc", |b| {
        let registry = Registry::new();
        let counter = registry.counter("bench_total", &[("k", "v")]);
        b.iter(|| counter.inc())
    });

    group.bench_function("trace_span", |b| {
        let clock: Arc<dyn ClockSource> = Arc::new(MonotonicClock::new());
        b.iter(|| {
            let mut trace = Trace::start(Arc::clone(&clock));
            let begin = trace.begin();
            trace.end_span("exec", begin);
            black_box(trace.total_us())
        })
    });

    group.bench_function("slowlog_fast_reject", |b| {
        // A full log with a high floor: the record call must stay on the
        // lock-free fast path, which is what every sub-floor request pays.
        let log = SlowLog::new(4);
        for us in [1_000_000, 1_000_001, 1_000_002, 1_000_003] {
            log.record("warm", us, Vec::new(), String::new());
        }
        assert!(log.threshold_us() > 0);
        b.iter(|| log.record(black_box("sparql"), black_box(5), Vec::new(), String::new()))
    });

    group.bench_function("registry_render", |b| {
        let registry = Registry::new();
        for tag in ["ingest", "sparql", "heatmap", "stats"] {
            let h = registry.histogram("bench_latency_us", &[("type", tag)]);
            for i in 0..1_000u64 {
                h.record_us(1 + i % 512);
            }
        }
        for i in 0..8u64 {
            registry
                .counter("bench_events_total", &[("kind", &format!("k{i}"))])
                .add(i);
        }
        registry.collector(|sink| sink.gauge("bench_queue_depth", &[], 3));
        b.iter(|| black_box(registry.render().len()))
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
