//! E4 timing: link discovery — blocking vs the quadratic baseline (A3).

use criterion::{criterion_group, criterion_main, Criterion};
use datacron_geo::TimeMs;
use datacron_link::{discover_links, discover_links_exhaustive, LinkRecord, LinkRule};
use datacron_sim::{
    generate_maritime, generate_registries, MaritimeConfig, NoiseModel, RegistryConfig,
};
use std::hint::black_box;

fn registries(n: usize) -> (Vec<LinkRecord>, Vec<LinkRecord>) {
    let fleet = generate_maritime(&MaritimeConfig {
        seed: 3,
        n_vessels: n,
        duration_ms: TimeMs::from_hours(1).millis(),
        report_interval_ms: 60_000,
        noise: NoiseModel::none(),
        frac_loitering: 0.0,
        frac_gap: 0.0,
        frac_drifting: 0.0,
        n_rendezvous_pairs: 0,
    });
    let reg = generate_registries(&fleet, &RegistryConfig::default());
    (
        reg.source_a.iter().map(LinkRecord::from).collect(),
        reg.source_b.iter().map(LinkRecord::from).collect(),
    )
}

fn bench_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("link");
    group.sample_size(20);
    for n in [100usize, 300] {
        let (a, b) = registries(n);
        group.bench_function(&format!("blocked/{n}"), |bench| {
            bench.iter(|| {
                let (links, _) = discover_links(black_box(&a), black_box(&b), &LinkRule::default());
                black_box(links.len())
            })
        });
        group.bench_function(&format!("exhaustive/{n}"), |bench| {
            bench.iter(|| {
                let links =
                    discover_links_exhaustive(black_box(&a), black_box(&b), &LinkRule::default());
                black_box(links.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_link);
criterion_main!(benches);
