//! E3 timing: CSV parsing and RDF mapping throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacron_bench::{maritime_small, reports_of};
use datacron_rdf::Graph;
use datacron_transform::{parse_ais_csv, report_to_ais_csv, RdfMapper};
use std::hint::black_box;

fn bench_transform(c: &mut Criterion) {
    let data = maritime_small();
    let reports = reports_of(&data);
    let csv: String = reports
        .iter()
        .map(report_to_ais_csv)
        .collect::<Vec<_>>()
        .join("\n");

    let mut group = c.benchmark_group("transform");
    group.throughput(Throughput::Elements(reports.len() as u64));

    group.bench_function("ais_serialize", |b| {
        b.iter(|| {
            let out: String = reports
                .iter()
                .map(|r| report_to_ais_csv(black_box(r)))
                .collect::<Vec<_>>()
                .join("\n");
            black_box(out.len())
        })
    });

    group.bench_function("ais_parse", |b| {
        b.iter(|| {
            let (parsed, errors) = parse_ais_csv(black_box(&csv));
            black_box((parsed.len(), errors.len()))
        })
    });

    group.bench_function("rdf_map", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            let mut mapper = RdfMapper::new();
            for r in &reports {
                mapper.map_report(&mut graph, black_box(r), None);
            }
            graph.commit();
            black_box(graph.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
