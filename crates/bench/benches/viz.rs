//! E10 timing: visual-analytics aggregation rates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacron_bench::{maritime_small, reports_of};
use datacron_geo::Grid;
use datacron_viz::DensityGrid;
use std::hint::black_box;

fn bench_viz(c: &mut Criterion) {
    let data = maritime_small();
    let reports = reports_of(&data);
    let points: Vec<datacron_geo::GeoPoint> = reports.iter().map(|r| r.position()).collect();

    let mut group = c.benchmark_group("viz");
    group.throughput(Throughput::Elements(points.len() as u64));
    for cell_deg in [0.02, 0.1] {
        group.bench_function(&format!("density_build/{cell_deg}"), |b| {
            b.iter(|| {
                let mut d = DensityGrid::new(Grid::new(data.world.region, cell_deg).unwrap());
                for p in &points {
                    d.add(black_box(p));
                }
                black_box(d.occupied_cells())
            })
        });
    }

    let mut density = DensityGrid::new(Grid::new(data.world.region, 0.02).unwrap());
    for p in &points {
        density.add(p);
    }
    group.bench_function("top_k_10", |b| {
        b.iter(|| black_box(density.top_k(black_box(10)).len()))
    });
    group.bench_function("render_ascii", |b| {
        b.iter(|| black_box(datacron_viz::render_ascii(black_box(&density)).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_viz);
criterion_main!(benches);
