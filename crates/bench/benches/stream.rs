//! E12 timing: stream-engine operator and windowing throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datacron_geo::TimeMs;
use datacron_stream::{
    with_watermarks, BoundedOutOfOrderness, CountAny, KeyedWindowOp, MapOp, Message, Operator,
    WindowSpec,
};
use std::hint::black_box;

fn bench_stream(c: &mut Criterion) {
    let n = 100_000i64;
    let mut group = c.benchmark_group("stream");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("map_operator", |b| {
        let msgs: Vec<Message<i64>> = (0..n)
            .map(|i| Message::record(TimeMs(i), i))
            .chain(std::iter::once(Message::End))
            .collect();
        b.iter(|| {
            let mut op = MapOp(|x: i64| x.wrapping_mul(31));
            black_box(op.run(black_box(msgs.clone())).len())
        })
    });

    group.bench_function("watermark_generation", |b| {
        let src: Vec<(TimeMs, i64)> = (0..n).map(|i| (TimeMs(i), i)).collect();
        b.iter(|| {
            let count =
                with_watermarks(black_box(src.clone()), BoundedOutOfOrderness::new(100, 64))
                    .count();
            black_box(count)
        })
    });

    for keys in [8u32, 256] {
        group.bench_function(&format!("tumbling_window/{keys}"), |b| {
            let src: Vec<(TimeMs, u32)> = (0..n).map(|i| (TimeMs(i), i as u32 % keys)).collect();
            let msgs: Vec<Message<u32>> =
                with_watermarks(src, BoundedOutOfOrderness::new(100, 64)).collect();
            b.iter(|| {
                let mut op: KeyedWindowOp<u32, CountAny<u32>, _> =
                    KeyedWindowOp::new(WindowSpec::tumbling(1000), |k: &u32| *k);
                black_box(op.run(black_box(msgs.clone())).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
