//! E15 — durable-ingest throughput vs. fsync policy, and recovery time
//! vs. WAL length.
//!
//! ```sh
//! cargo run --release -p datacron-bench --bin storage_durability           # full
//! cargo run --release -p datacron-bench --bin storage_durability -- quick  # CI-sized
//! ```
//!
//! Part 1 sweeps the WAL's group-commit fsync policy (`always`,
//! `every=8`, `every=64`, `never`) over a fixed stream of encoded ingest
//! batches and reports append throughput plus fsync p99 — the durability
//! price list. Part 3 re-runs `always` with 1/4/8/32 concurrent
//! appenders through the group-commit fsync thread: each client blocks
//! on the shared `durable_lsn` watermark instead of its own fsync, so
//! one `sync_data` covers the whole group and throughput scales with
//! client count. Part 2 grows the WAL, then measures a cold recovery the
//! way `datacron-server` performs it: read + verify + decode the log,
//! replay it through a fresh analytics state, and — for comparison — a
//! snapshot-only restart of the same state. Replay is measured both
//! ways: one `ingest` call per WAL record (a graph commit per record —
//! quadratic in log length, the pre-replication behaviour) and the
//! batch path (`ingest_many`, one commit for the whole log) the server
//! and follower catch-up now use. Results land in `BENCH_storage.json`
//! at the repo root.

use datacron_core::PipelineConfig;
use datacron_geo::{BoundingBox, GeoPoint, TimeMs};
use datacron_model::{NavStatus, ObjectId, PositionReport, SourceId};
use datacron_server::codec::{decode_batch, encode_batch};
use datacron_server::AnalyticsState;
use datacron_storage::test_util::TempDir;
use datacron_storage::{FsyncPolicy, Storage, StorageConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Deterministic xorshift64* so every run streams the same batches.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const REGION: BoundingBox = BoundingBox {
    min_lon: 19.0,
    min_lat: 33.0,
    max_lon: 30.0,
    max_lat: 41.0,
};

const REPORTS_PER_BATCH: usize = 20;

/// One encoded ingest batch: `REPORTS_PER_BATCH` in-region fixes from a
/// rotating fleet, timestamps advancing so the pipeline keeps them.
fn make_batch(rng: &mut Rng, batch_no: u64) -> Vec<u8> {
    let reports: Vec<PositionReport> = (0..REPORTS_PER_BATCH as u64)
        .map(|i| {
            let obj = 1 + (batch_no * 7 + i) % 50;
            PositionReport::maritime(
                ObjectId(obj),
                TimeMs(((batch_no * REPORTS_PER_BATCH as u64 + i) * 10_000) as i64),
                GeoPoint::new(
                    20.0 + rng.below(9_000) as f64 / 1000.0,
                    34.0 + rng.below(6_000) as f64 / 1000.0,
                ),
                2.0 + rng.below(100) as f64 / 10.0,
                rng.below(360) as f64,
                SourceId::AIS_TERRESTRIAL,
                NavStatus::UnderWay,
            )
        })
        .collect();
    encode_batch(&reports)
}

fn storage_cfg(fsync: FsyncPolicy) -> StorageConfig {
    StorageConfig {
        segment_bytes: 8 * 1024 * 1024,
        fsync,
        snapshot_every_records: 0,
    }
}

struct SweepResult {
    policy: String,
    records_per_s: u64,
    mib_per_s: f64,
    fsync_p99_us: u64,
    fsyncs: u64,
}

/// Appends `batches` pre-encoded records under one fsync policy.
fn fsync_sweep(policy: FsyncPolicy, name: &str, batches: &[Vec<u8>]) -> SweepResult {
    let dir = TempDir::new("bench-fsync");
    let (mut storage, _) = Storage::open(dir.path(), storage_cfg(policy)).expect("open");
    let bytes: usize = batches.iter().map(Vec::len).sum();
    let t = Instant::now();
    for payload in batches {
        storage.append(payload).expect("append");
    }
    storage.sync().expect("final sync");
    let elapsed = t.elapsed();
    let stats = storage.stats();
    SweepResult {
        policy: name.to_string(),
        records_per_s: (batches.len() as f64 / elapsed.as_secs_f64()) as u64,
        mib_per_s: bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64(),
        fsync_p99_us: stats.fsync_p99_us,
        fsyncs: stats.fsyncs,
    }
}

struct ConcurrentResult {
    clients: usize,
    records_per_s: u64,
    fsyncs: u64,
    commit_batches: u64,
    avg_group: f64,
    speedup_vs_serial: f64,
}

/// Part 3: concurrent durable ingest at `fsync=always` through the
/// group-commit path. N appender threads share the storage lock only
/// for the (short) buffered write, then block on the durable watermark
/// — the same discipline the server's deferred acks follow. The fsync
/// thread amortises one `sync_data` over every record written since the
/// previous one, so throughput scales with client count instead of
/// paying one fsync per record.
fn concurrent_always(
    clients: usize,
    total_batches: usize,
    batches: &[Vec<u8>],
    serial_rps: u64,
) -> ConcurrentResult {
    use std::sync::{Arc, Mutex};
    let dir = TempDir::new("bench-group");
    let (storage, _) = Storage::open(dir.path(), storage_cfg(FsyncPolicy::Always)).expect("open");
    assert!(storage.group_commit_active(), "always => group commit");
    let commit = storage.commit();
    let storage = Arc::new(Mutex::new(storage));
    let per_thread = total_batches / clients;

    let t = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let storage = Arc::clone(&storage);
            let commit = Arc::clone(&commit);
            let my: Vec<Vec<u8>> = (0..per_thread)
                .map(|i| batches[(c * per_thread + i) % batches.len()].clone())
                .collect();
            std::thread::spawn(move || {
                for payload in &my {
                    let (seq, deferred) = storage
                        .lock()
                        .expect("storage lock")
                        .append_async(payload)
                        .expect("append");
                    if deferred {
                        commit.wait_durable(seq + 1).expect("durable");
                    }
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("appender thread");
    }
    let elapsed = t.elapsed();

    let appended = per_thread * clients;
    let rps = appended as f64 / elapsed.as_secs_f64();
    let stats = storage.lock().expect("storage lock").stats();
    assert!(
        stats.durable_lsn >= appended as u64,
        "every appended record must be durable before its waiter returns"
    );
    ConcurrentResult {
        clients,
        records_per_s: rps as u64,
        fsyncs: stats.fsyncs,
        commit_batches: stats.commit_batches,
        avg_group: appended as f64 / stats.fsyncs.max(1) as f64,
        speedup_vs_serial: rps / serial_rps.max(1) as f64,
    }
}

fn fresh_state() -> AnalyticsState {
    AnalyticsState::new(
        PipelineConfig {
            region: REGION,
            ..PipelineConfig::default()
        },
        0.25,
    )
}

struct RecoveryResult {
    wal_records: usize,
    wal_bytes: u64,
    read_ms: f64,
    replay_ms: f64,
    replay_batch_ms: f64,
    snapshot_bytes: usize,
    snapshot_restore_ms: f64,
}

/// Builds a WAL of `n_batches` records, then measures a cold restart
/// both ways: WAL read+replay, and snapshot-only restore.
fn recovery_run(n_batches: usize, batches: &[Vec<u8>]) -> RecoveryResult {
    let dir = TempDir::new("bench-recovery");
    let wal_bytes;
    {
        let (mut storage, _) =
            Storage::open(dir.path(), storage_cfg(FsyncPolicy::Never)).expect("open");
        for payload in &batches[..n_batches] {
            storage.append(payload).expect("append");
        }
        storage.sync().expect("sync");
        wal_bytes = storage.stats().wal_bytes;
    }

    // Cold recovery, exactly the server's sequence: open (verifies CRCs
    // and collects the tail), decode every record, replay through a
    // fresh analytics state.
    let t = Instant::now();
    let (_, recovery) = Storage::open(dir.path(), storage_cfg(FsyncPolicy::Never)).expect("reopen");
    let decoded: Vec<Vec<PositionReport>> = recovery
        .wal_tail
        .iter()
        .map(|(_, payload)| decode_batch(payload).expect("decode"))
        .collect();
    let read_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(decoded.len(), n_batches);

    let mut state = fresh_state();
    let t = Instant::now();
    for batch in &decoded {
        state.ingest(batch);
    }
    let replay_ms = t.elapsed().as_secs_f64() * 1000.0;

    // Batch replay: the whole decoded log through `ingest_many`, one
    // graph commit total. This is the path recovery and follower
    // catch-up actually take.
    let mut batch_state = fresh_state();
    let t = Instant::now();
    batch_state.ingest_many(&decoded);
    let replay_batch_ms = t.elapsed().as_secs_f64() * 1000.0;
    drop(batch_state);

    // The alternative: restore the same end state from a snapshot.
    let snapshot = state.to_snapshot_bytes();
    let t = Instant::now();
    let restored = AnalyticsState::from_snapshot_bytes(
        PipelineConfig {
            region: REGION,
            ..PipelineConfig::default()
        },
        0.25,
        1,
        usize::MAX,
        &snapshot,
    )
    .expect("snapshot restore");
    let snapshot_restore_ms = t.elapsed().as_secs_f64() * 1000.0;
    drop(restored);

    RecoveryResult {
        wal_records: n_batches,
        wal_bytes,
        read_ms,
        replay_ms,
        replay_batch_ms,
        snapshot_bytes: snapshot.len(),
        snapshot_restore_ms,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let sweep_batches = if quick { 500 } else { 2_000 };
    let recovery_sizes: &[usize] = if quick {
        &[250, 1_000]
    } else {
        &[500, 2_000, 8_000]
    };

    let mut rng = Rng(0xE15_5EED);
    let max_batches = sweep_batches.max(*recovery_sizes.iter().max().unwrap());
    eprintln!("encoding {max_batches} batches of {REPORTS_PER_BATCH} reports");
    let batches: Vec<Vec<u8>> = (0..max_batches as u64)
        .map(|i| make_batch(&mut rng, i))
        .collect();

    let policies = [
        (FsyncPolicy::Always, "always"),
        (FsyncPolicy::EveryN(8), "every=8"),
        (FsyncPolicy::EveryN(64), "every=64"),
        (FsyncPolicy::Never, "never"),
    ];
    let mut sweep = Vec::new();
    for (policy, name) in policies {
        let r = fsync_sweep(policy, name, &batches[..sweep_batches]);
        eprintln!(
            "fsync {:8} {:>8} rec/s {:>8.1} MiB/s (fsyncs {}, p99 {}us)",
            r.policy, r.records_per_s, r.mib_per_s, r.fsyncs, r.fsync_p99_us
        );
        sweep.push(r);
    }

    // Part 3: the group-commit sweep. Speedup is against this run's own
    // serial `always` result so the comparison shares hardware and page
    // cache state.
    let serial_rps = sweep
        .iter()
        .find(|r| r.policy == "always")
        .map(|r| r.records_per_s)
        .unwrap_or(1);
    let concurrent_batches = if quick { 2_000 } else { 8_000 };
    let mut concurrent = Vec::new();
    for clients in [1usize, 4, 8, 32] {
        let r = concurrent_always(clients, concurrent_batches, &batches, serial_rps);
        eprintln!(
            "group-commit {:>2} clients: {:>8} rec/s ({:.1}x serial always, {} fsyncs, avg group {:.1})",
            r.clients, r.records_per_s, r.speedup_vs_serial, r.fsyncs, r.avg_group
        );
        concurrent.push(r);
    }

    let mut recoveries = Vec::new();
    for &n in recovery_sizes {
        let r = recovery_run(n, &batches);
        eprintln!(
            "recovery {:>6} records: read {:.1}ms replay {:.1}ms batch-replay {:.1}ms ({:.0}x) | snapshot restore {:.1}ms ({} bytes)",
            r.wal_records,
            r.read_ms,
            r.replay_ms,
            r.replay_batch_ms,
            r.replay_ms / r.replay_batch_ms.max(0.001),
            r.snapshot_restore_ms,
            r.snapshot_bytes
        );
        recoveries.push(r);
    }

    let mut out = String::from("{\n  \"experiment\": \"E15\",\n");
    let _ = writeln!(
        out,
        "  \"reports_per_batch\": {REPORTS_PER_BATCH},\n  \"fsync_sweep_batches\": {sweep_batches},"
    );
    out.push_str("  \"fsync_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"policy\": \"{}\", \"records_per_s\": {}, \"mib_per_s\": {:.2}, \"fsync_p99_us\": {}, \"fsyncs\": {}}}{}",
            r.policy,
            r.records_per_s,
            r.mib_per_s,
            r.fsync_p99_us,
            r.fsyncs,
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"concurrent_batches\": {concurrent_batches},");
    out.push_str("  \"concurrent_always\": [\n");
    for (i, r) in concurrent.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"clients\": {}, \"records_per_s\": {}, \"fsyncs\": {}, \"commit_batches\": {}, \"avg_group_size\": {:.1}, \"speedup_vs_serial\": {:.1}}}{}",
            r.clients,
            r.records_per_s,
            r.fsyncs,
            r.commit_batches,
            r.avg_group,
            r.speedup_vs_serial,
            if i + 1 < concurrent.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"wal_records\": {}, \"wal_bytes\": {}, \"wal_read_ms\": {:.2}, \"replay_ms\": {:.2}, \"replay_batch_ms\": {:.2}, \"replay_speedup\": {:.1}, \"snapshot_bytes\": {}, \"snapshot_restore_ms\": {:.2}}}{}",
            r.wal_records,
            r.wal_bytes,
            r.read_ms,
            r.replay_ms,
            r.replay_batch_ms,
            r.replay_ms / r.replay_batch_ms.max(0.001),
            r.snapshot_bytes,
            r.snapshot_restore_ms,
            if i + 1 < recoveries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    // The repo root, resolved from this crate's manifest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
    std::fs::write(path, &out).expect("write BENCH_storage.json");
    eprintln!("wrote {path}");
}
