//! E18 — read scale-out across replicas and follower catch-up.
//!
//! ```sh
//! cargo run --release -p datacron-bench --bin repl_scale           # full
//! cargo run --release -p datacron-bench --bin repl_scale -- quick  # CI-sized
//! ```
//!
//! Starts one durable leader and two memory-only followers in-process
//! (real TCP on loopback — the same wire path `scripts/bench_repl.sh`
//! exercises with the standalone binaries), preloads the leader and
//! waits for full convergence, then drives a closed-loop read mix
//! (sparql / heatmap / flows / events) against 1, 2, and 3 endpoints
//! with a fixed client-thread pool. The curve is the read scale-out
//! story: identical offered work, more replicas sharing it. A final
//! write burst at the leader measures follower catch-up time. Results
//! land in `BENCH_repl.json` at the repo root.

use datacron_core::{PipelineConfig, PolygonSpec};
use datacron_geo::BoundingBox;
use datacron_server::client::is_ok;
use datacron_server::{start, Client, Json, ReplicationConfig, ServerConfig};
use datacron_storage::{FsyncPolicy, StorageConfig};
use datacron_stream::LatencyHistogram;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const REPORTS_PER_BATCH: usize = 20;

fn rect(lon0: f64, lat0: f64, lon1: f64, lat1: f64) -> PolygonSpec {
    PolygonSpec(vec![(lon0, lat0), (lon1, lat0), (lon1, lat1), (lon0, lat1)])
}

fn base_config() -> ServerConfig {
    ServerConfig {
        pipeline: PipelineConfig {
            region: BoundingBox::new(19.0, 33.0, 30.0, 41.0),
            zones: vec![
                ("west".to_string(), rect(20.0, 34.0, 23.0, 40.0)),
                ("east".to_string(), rect(26.0, 34.0, 29.0, 40.0)),
            ],
            ..PipelineConfig::default()
        },
        heat_cell_deg: 0.25,
        ..ServerConfig::default()
    }
}

/// Deterministic xorshift64* so every run offers the same stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn ingest_request(rng: &mut Rng, batch_no: u64) -> Json {
    let reports: Vec<Json> = (0..REPORTS_PER_BATCH as u64)
        .map(|i| {
            Json::obj()
                .field("object", 1 + (batch_no * 7 + i) % 50)
                .field(
                    "t_ms",
                    ((batch_no * REPORTS_PER_BATCH as u64 + i) * 10_000) as i64,
                )
                .field("lon", 20.0 + rng.below(9_000) as f64 / 1000.0)
                .field("lat", 34.0 + rng.below(6_000) as f64 / 1000.0)
                .field("speed_mps", 2.0 + rng.below(100) as f64 / 10.0)
                .field("heading_deg", rng.below(360) as f64)
                .build()
        })
        .collect();
    Json::obj()
        .field("type", "ingest")
        .field("reports", Json::Arr(reports))
        .build()
}

fn read_request(seq: u64, rng: &mut Rng) -> Json {
    match seq % 4 {
        0 => Json::obj()
            .field("type", "sparql")
            .field(
                "query",
                format!(
                    "SELECT ?n WHERE {{ ?n da:ofMovingObject da:obj/{} }}",
                    1 + rng.below(50)
                ),
            )
            .field("limit", 20u64)
            .build(),
        1 => Json::obj()
            .field("type", "heatmap")
            .field("top_k", 10u64)
            .build(),
        2 => Json::obj()
            .field("type", "flows")
            .field("top_k", 10u64)
            .build(),
        _ => Json::obj()
            .field("type", "events")
            .field("limit", 20u64)
            .build(),
    }
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_timeout(addr, Duration::from_secs(10)).expect("connect")
}

fn applied_lsn(addr: SocketAddr) -> u64 {
    let mut c = connect(addr);
    let resp = c
        .call(&Json::obj().field("type", "repl_status").build())
        .expect("repl_status");
    resp.get("replication")
        .and_then(|r| r.get("applied_lsn"))
        .and_then(Json::as_u64)
        .expect("applied_lsn")
}

/// Blocks until `addr` reports an applied LSN of at least `target`;
/// returns how long it took.
fn await_applied(addr: SocketAddr, target: u64) -> Duration {
    let t = Instant::now();
    loop {
        if applied_lsn(addr) >= target {
            return t.elapsed();
        }
        if t.elapsed() > Duration::from_secs(60) {
            panic!("follower at {addr} never reached lsn {target}");
        }
        thread::sleep(Duration::from_millis(2));
    }
}

struct StepResult {
    replicas: usize,
    ops: u64,
    ops_per_s: u64,
    p50_us: u64,
    p99_us: u64,
}

/// Closed-loop read throughput: `threads` clients split round-robin
/// over `endpoints`, each issuing reads back to back for `dur`.
fn read_step(endpoints: &[SocketAddr], threads: usize, dur: Duration) -> StepResult {
    let latency = Arc::new(LatencyHistogram::new());
    let ops = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let addr = endpoints[i % endpoints.len()];
            let latency = Arc::clone(&latency);
            let ops = Arc::clone(&ops);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut c = connect(addr);
                let mut rng = Rng(0xE18_5EED ^ (i as u64 + 1));
                let mut seq = i as u64;
                while !stop.load(Ordering::Relaxed) {
                    let req = read_request(seq, &mut rng);
                    let t = Instant::now();
                    let resp = c.call(&req).expect("read");
                    assert!(is_ok(&resp), "read failed: {resp}");
                    latency.record_since(t);
                    ops.fetch_add(1, Ordering::Relaxed);
                    seq += 1;
                }
            })
        })
        .collect();
    thread::sleep(dur);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total = ops.load(Ordering::Relaxed);
    StepResult {
        replicas: endpoints.len(),
        ops: total,
        ops_per_s: (total as f64 / elapsed) as u64,
        p50_us: latency.percentile(50.0),
        p99_us: latency.percentile(99.0),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let preload_batches: u64 = if quick { 50 } else { 300 };
    let burst_batches: u64 = if quick { 25 } else { 150 };
    let step_dur = Duration::from_secs_f64(if quick { 1.0 } else { 4.0 });
    let threads = 6;

    let dir = datacron_storage::test_util::TempDir::new("bench-repl");
    let leader = start(ServerConfig {
        data_dir: Some(dir.path().to_path_buf()),
        storage: StorageConfig {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::EveryN(8),
            snapshot_every_records: 0,
        },
        ..base_config()
    })
    .expect("leader start");
    let followers: Vec<_> = (1..=2)
        .map(|i| {
            start(ServerConfig {
                replication: ReplicationConfig {
                    follow: Some(leader.local_addr.to_string()),
                    follower_id: format!("bench-follower-{i}"),
                    poll_interval: Duration::from_millis(2),
                    ..ReplicationConfig::default()
                },
                ..base_config()
            })
            .expect("follower start")
        })
        .collect();

    eprintln!("preloading {preload_batches} batches of {REPORTS_PER_BATCH} reports");
    let mut rng = Rng(0xE18_5EED);
    let mut c = connect(leader.local_addr);
    for b in 0..preload_batches {
        let resp = c.call(&ingest_request(&mut rng, b)).expect("ingest");
        assert!(is_ok(&resp), "ingest failed: {resp}");
    }
    drop(c);
    for f in &followers {
        await_applied(f.local_addr, preload_batches);
    }

    let endpoints: Vec<SocketAddr> = std::iter::once(leader.local_addr)
        .chain(followers.iter().map(|f| f.local_addr))
        .collect();
    let mut steps = Vec::new();
    for n in 1..=endpoints.len() {
        let r = read_step(&endpoints[..n], threads, step_dur);
        eprintln!(
            "replicas {}: {:>7} ops/s  p50 {:>5}us  p99 {:>6}us ({} ops)",
            r.replicas, r.ops_per_s, r.p50_us, r.p99_us, r.ops
        );
        steps.push(r);
    }

    // Catch-up: a write burst at the leader while followers tail it.
    eprintln!("write burst of {burst_batches} batches");
    let mut c = connect(leader.local_addr);
    for b in 0..burst_batches {
        let resp = c
            .call(&ingest_request(&mut rng, preload_batches + b))
            .expect("ingest");
        assert!(is_ok(&resp), "ingest failed: {resp}");
    }
    drop(c);
    let target = preload_batches + burst_batches;
    let catch_up: Vec<Duration> = followers
        .iter()
        .map(|f| await_applied(f.local_addr, target))
        .collect();
    for (i, d) in catch_up.iter().enumerate() {
        eprintln!(
            "follower {} caught up {} records in {:.1}ms",
            i + 1,
            burst_batches,
            d.as_secs_f64() * 1000.0
        );
    }

    let mut out = String::from("{\n  \"experiment\": \"E18\",\n");
    let _ = writeln!(
        out,
        "  \"reports_per_batch\": {REPORTS_PER_BATCH},\n  \"preload_batches\": {preload_batches},\n  \"client_threads\": {threads},"
    );
    out.push_str("  \"read_scaling\": [\n");
    for (i, r) in steps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"replicas\": {}, \"ops\": {}, \"ops_per_s\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}",
            r.replicas,
            r.ops,
            r.ops_per_s,
            r.p50_us,
            r.p99_us,
            if i + 1 < steps.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"catch_up\": [\n");
    for (i, d) in catch_up.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"follower\": {}, \"burst_batches\": {}, \"catch_up_ms\": {:.2}}}{}",
            i + 1,
            burst_batches,
            d.as_secs_f64() * 1000.0,
            if i + 1 < catch_up.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    for f in followers {
        f.shutdown();
    }
    leader.shutdown();

    // The repo root, resolved from this crate's manifest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repl.json");
    std::fs::write(path, &out).expect("write BENCH_repl.json");
    eprintln!("wrote {path}");
}
