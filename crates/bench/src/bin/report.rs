//! The experiment report generator.
//!
//! Regenerates every experiment table in EXPERIMENTS.md from scratch:
//!
//! ```sh
//! cargo run --release -p datacron-bench --bin report            # all
//! cargo run --release -p datacron-bench --bin report -- e1 e5  # a subset
//! ```
//!
//! Timing microbenchmarks live in the Criterion benches; this binary
//! reports the *quality* metrics plus coarse wall-clock rates.

use datacron_bench::{aviation_workload, maritime_workload, reports_of, table};
use datacron_cep::{
    CpaDetector, DarkActivityDetector, LoiteringDetector, PatternMarkovChain, RendezvousDetector,
};
use datacron_core::{Pipeline, PipelineConfig};
use datacron_forecast::{
    evaluate_horizons, reconstruct_tracks, ConstantTurnPredictor, DeadReckoningPredictor,
    MarkovGridModel, Predictor, RouteModel, VerticalProfilePredictor,
};
use datacron_geo::{Grid, TimeMs};
use datacron_link::{
    discover_links, discover_links_exhaustive, evaluate_links, LinkRecord, LinkRule,
};
use datacron_model::{labels::prf1, EventKind, PositionReport};
use datacron_rdf::{
    execute, parse_query, Graph, HashPartitioner, PartitionedStore, SpatialGridPartitioner,
    TemporalPartitioner,
};
use datacron_sim::{
    generate_maritime, generate_registries, MaritimeConfig, NoiseModel, RegistryConfig,
};
use datacron_synopses::{
    sed_error, Cleanser, CriticalPointDetector, DeadReckoningCompressor, SynopsisConfig,
};
use datacron_transform::{parse_ais_csv, report_to_ais_csv, RdfMapper};
use datacron_viz::{DensityGrid, FlowMatrix};
use std::time::Instant;

fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

fn header(id: &str, title: &str) {
    println!("\n### {id} — {title}\n");
}

/// E1 — in-situ compression: ratio / error / throughput vs threshold.
fn e1() {
    header("E1", "in-situ trajectory compression (claim C1)");
    let data = maritime_workload(1);
    let raw = reports_of(&data);
    let mut cleanser = Cleanser::default();
    let clean: Vec<PositionReport> = raw.iter().filter(|r| cleanser.check(r)).copied().collect();
    println!(
        "workload: {} raw reports → {} cleansed ({} dropped)\n",
        raw.len(),
        clean.len(),
        cleanser.stats().dropped()
    );

    let mut rows = Vec::new();
    for threshold in [10.0, 50.0, 100.0, 250.0, 500.0] {
        let mut c = DeadReckoningCompressor::new(threshold);
        let t = Instant::now();
        let kept: Vec<PositionReport> = clean.iter().filter(|r| c.check(r)).copied().collect();
        let secs = t.elapsed().as_secs_f64();
        // SED per object, pooled.
        let originals = reconstruct_tracks(&clean, i64::MAX / 4);
        let compressed = reconstruct_tracks(&kept, i64::MAX / 4);
        let mut mean_acc = 0.0;
        let mut max_acc = 0.0f64;
        let mut n = 0usize;
        for orig in &originals {
            if let Some(cmp) = compressed.iter().find(|t| t.object == orig.object) {
                let s = sed_error(orig.points(), cmp.points());
                mean_acc += s.mean_m * s.n as f64;
                max_acc = max_acc.max(s.max_m);
                n += s.n;
            }
        }
        rows.push(vec![
            fmt(threshold, 0),
            format!("{}", kept.len()),
            fmt(c.ratio() * 100.0, 1),
            fmt(mean_acc / n.max(1) as f64, 1),
            fmt(max_acc, 0),
            fmt(clean.len() as f64 / secs / 1000.0, 0),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "threshold (m)",
                "kept",
                "ratio (%)",
                "SED mean (m)",
                "SED max (m)",
                "krep/s"
            ],
            &rows
        )
    );

    // A1 ablation: the offline Douglas–Peucker baseline at a matched
    // epsilon sweep. DP sees whole trajectories (not a stream), so it is
    // the quality upper bound for a given retention budget.
    let originals = reconstruct_tracks(&clean, i64::MAX / 4);
    let mut rows = Vec::new();
    for eps in [50.0, 100.0, 250.0] {
        let t = Instant::now();
        let mut kept_total = 0usize;
        let mut mean_acc = 0.0;
        let mut max_acc = 0.0f64;
        let mut n = 0usize;
        for orig in &originals {
            let kept_idx = datacron_synopses::douglas_peucker(orig.points(), eps);
            kept_total += kept_idx.len();
            let kept_pts: Vec<datacron_model::TrajPoint> =
                kept_idx.iter().map(|&i| orig.points()[i]).collect();
            let s = sed_error(orig.points(), &kept_pts);
            mean_acc += s.mean_m * s.n as f64;
            max_acc = max_acc.max(s.max_m);
            n += s.n;
        }
        let secs = t.elapsed().as_secs_f64();
        rows.push(vec![
            fmt(eps, 0),
            format!("{kept_total}"),
            fmt((1.0 - kept_total as f64 / clean.len() as f64) * 100.0, 1),
            fmt(mean_acc / n.max(1) as f64, 1),
            fmt(max_acc, 0),
            fmt(clean.len() as f64 / secs / 1000.0, 0),
        ]);
    }
    println!(
        "A1 ablation — offline Douglas–Peucker baseline (batch, whole-trajectory):\n{}",
        table(
            &[
                "epsilon (m)",
                "kept",
                "ratio (%)",
                "SED mean (m)",
                "SED max (m)",
                "krep/s"
            ],
            &rows
        )
    );
}

/// E2 — analytics quality on raw vs compressed streams.
fn e2() {
    header("E2", "compression does not hurt analytics (claim C1)");
    let data = maritime_workload(1);
    let raw = reports_of(&data);
    let mut cleanser = Cleanser::default();
    let clean: Vec<PositionReport> = raw.iter().filter(|r| cleanser.check(r)).copied().collect();

    let run_detectors = |reports: &[PositionReport]| {
        let mut loiter = LoiteringDetector::default();
        let mut synopsis = CriticalPointDetector::new(SynopsisConfig {
            gap_threshold_ms: 5 * 60_000,
            ..SynopsisConfig::default()
        });
        let mut dark = DarkActivityDetector::new(15 * 60_000);
        let mut loiters = Vec::new();
        let mut darks = Vec::new();
        let mut pts = Vec::new();
        for r in reports {
            if let Some(e) = loiter.update(r) {
                loiters.push((e.objects.clone(), e.interval));
            }
            pts.clear();
            synopsis.update(r, &mut pts);
            for cp in &pts {
                if let Some(low) = datacron_cep::critical_to_event(cp) {
                    if let Some(e) = dark.update(&low) {
                        darks.push((e.objects.clone(), e.interval));
                    }
                }
            }
        }
        (loiters, darks)
    };

    let mut rows = Vec::new();
    for threshold in [0.0, 50.0, 100.0, 250.0, 500.0] {
        let (stream, label, ratio) = if threshold == 0.0 {
            (clean.clone(), "raw".to_string(), 0.0)
        } else {
            let mut c = DeadReckoningCompressor::new(threshold);
            let kept: Vec<PositionReport> = clean.iter().filter(|r| c.check(r)).copied().collect();
            (kept, fmt(threshold, 0), c.ratio())
        };
        let (loiters, darks) = run_detectors(&stream);
        let score =
            |kind, det: &Vec<(Vec<datacron_model::ObjectId>, datacron_geo::TimeInterval)>| {
                let (tp, _fp, fn_) = data.truth.score_events(kind, det, 15 * 60_000);
                let (_, r, _) = prf1(tp, 0, fn_);
                r
            };
        rows.push(vec![
            label,
            fmt(ratio * 100.0, 1),
            fmt(score(EventKind::Loitering, &loiters), 2),
            fmt(score(EventKind::DarkActivity, &darks), 2),
        ]);
    }
    println!(
        "{}",
        table(
            &["threshold (m)", "ratio (%)", "loiter recall", "dark recall"],
            &rows
        )
    );
    println!("(threshold 'raw' = uncompressed baseline)");
}

/// E3 — transformation to the common RDF representation.
fn e3() {
    header("E3", "transformation to RDF (claim C2)");
    let data = maritime_workload(1);
    let reports = reports_of(&data);

    // CSV parse throughput.
    let csv: String = reports
        .iter()
        .map(report_to_ais_csv)
        .collect::<Vec<_>>()
        .join("\n");
    let t = Instant::now();
    let (parsed, errors) = parse_ais_csv(&csv);
    let parse_secs = t.elapsed().as_secs_f64();

    // RDF mapping throughput.
    let mut graph = Graph::new();
    let mut mapper = RdfMapper::new();
    let t = Instant::now();
    for v in &data.vessels {
        mapper.map_vessel_info(&mut graph, v);
    }
    for r in &parsed {
        mapper.map_report(&mut graph, r, None);
    }
    graph.commit();
    let map_secs = t.elapsed().as_secs_f64();

    let rows = vec![
        vec![
            "AIS CSV parse".into(),
            format!("{}", parsed.len()),
            fmt(parsed.len() as f64 / parse_secs / 1000.0, 0),
            format!("{} errors", errors.len()),
        ],
        vec![
            "RDF mapping".into(),
            format!("{} triples", graph.len()),
            fmt(parsed.len() as f64 / map_secs / 1000.0, 0),
            fmt(graph.len() as f64 / parsed.len() as f64, 2),
        ],
    ];
    println!(
        "{}",
        table(
            &["stage", "output", "krec/s", "notes (triples/report)"],
            &rows
        )
    );
}

/// E4 — link discovery: blocking vs exhaustive.
fn e4() {
    header("E4", "link discovery across registries (claim C3)");
    let fleet = generate_maritime(&MaritimeConfig {
        seed: 3,
        n_vessels: 400,
        duration_ms: TimeMs::from_hours(2).millis(),
        report_interval_ms: 60_000,
        noise: NoiseModel::none(),
        frac_loitering: 0.0,
        frac_gap: 0.0,
        frac_drifting: 0.0,
        n_rendezvous_pairs: 0,
    });
    let reg = generate_registries(
        &fleet,
        &RegistryConfig {
            n_distractors: 80,
            ..RegistryConfig::default()
        },
    );
    let a: Vec<LinkRecord> = reg.source_a.iter().map(LinkRecord::from).collect();
    let b: Vec<LinkRecord> = reg.source_b.iter().map(LinkRecord::from).collect();
    println!(
        "registries: |A| = {}, |B| = {}, true links = {}\n",
        a.len(),
        b.len(),
        reg.truth.links.len()
    );

    let mut rows = Vec::new();
    let t = Instant::now();
    let exhaustive = discover_links_exhaustive(&a, &b, &LinkRule::default());
    let ex_ms = t.elapsed().as_secs_f64() * 1000.0;
    let s = evaluate_links(&exhaustive, &reg.truth);
    rows.push(vec![
        "exhaustive".into(),
        format!("{}", a.len() * b.len()),
        "0.0".into(),
        fmt(s.precision, 3),
        fmt(s.recall, 3),
        fmt(s.f1, 3),
        fmt(ex_ms, 1),
    ]);
    for tile in [0.2, 0.05, 0.02] {
        let rule = LinkRule {
            tile_deg: tile,
            ..LinkRule::default()
        };
        let t = Instant::now();
        let (links, stats) = discover_links(&a, &b, &rule);
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        let s = evaluate_links(&links, &reg.truth);
        rows.push(vec![
            format!("blocked {tile}°"),
            format!("{}", stats.candidates),
            fmt(stats.reduction * 100.0, 1),
            fmt(s.precision, 3),
            fmt(s.recall, 3),
            fmt(s.f1, 3),
            fmt(ms, 1),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "variant",
                "pairs scored",
                "reduction (%)",
                "P",
                "R",
                "F1",
                "ms"
            ],
            &rows
        )
    );
}

/// E5 — RDF store: load rate, query answering, partitioning & pruning.
fn e5() {
    header("E5", "spatiotemporal RDF query answering (claim C4)");
    let data = maritime_workload(1);
    let reports = reports_of(&data);
    let mut graph = Graph::new();
    let mut mapper = RdfMapper::new();
    let t = Instant::now();
    for v in &data.vessels {
        mapper.map_vessel_info(&mut graph, v);
    }
    for r in &reports {
        mapper.map_report(&mut graph, r, None);
    }
    graph.commit();
    let load_secs = t.elapsed().as_secs_f64();
    println!(
        "store: {} triples, bulk load {:.0} ktriples/s\n",
        graph.len(),
        graph.len() as f64 / load_secs / 1000.0
    );

    let queries = [
        ("Q1 lookup", "SELECT ?n WHERE { ?n da:ofMovingObject da:obj/7 }"),
        ("Q2 star", "SELECT ?v ?name ?flag WHERE { ?v da:name ?name . ?v da:flag ?flag . ?v rdf:type da:Vessel }"),
        ("Q3 filter", "SELECT ?n ?s WHERE { ?n da:speed ?s . FILTER (?s > 8.0) }"),
        ("Q4 spatial", "SELECT ?n WHERE { ?n da:hasGeometry ?g . FILTER st_within(?g, 23.2, 37.4, 24.2, 38.4) }"),
        ("Q5 temporal", "SELECT ?n WHERE { ?n da:hasTemporalFeature ?t . FILTER t_between(?t, 0, 3600000) }"),
        ("Q6 spatio-temporal", "SELECT ?n WHERE { ?n da:hasGeometry ?g . ?n da:hasTemporalFeature ?t . FILTER st_within(?g, 23.2, 37.4, 24.7, 38.9) FILTER t_between(?t, 0, 7200000) }"),
    ];

    // Single-store latencies.
    let mut rows = Vec::new();
    for (name, text) in &queries {
        let q = parse_query(text).expect("valid query");
        // Warm + measure best-of-3.
        let mut best = f64::MAX;
        let mut rows_out = 0;
        for _ in 0..3 {
            let t = Instant::now();
            let (b, _) = execute(&graph, &q);
            best = best.min(t.elapsed().as_secs_f64() * 1000.0);
            rows_out = b.len();
        }
        rows.push(vec![name.to_string(), format!("{rows_out}"), fmt(best, 2)]);
    }
    println!("single store:\n{}", table(&["query", "rows", "ms"], &rows));

    // Partitioning comparison on the pruning-sensitive queries.
    let region = data.world.region;
    type PartitionerBuilder = Box<dyn Fn() -> Box<dyn datacron_rdf::Partitioner>>;
    let builders: Vec<(&str, PartitionerBuilder)> = vec![
        ("hash", Box::new(|| Box::new(HashPartitioner::new(8)))),
        (
            "spatial-grid",
            Box::new(move || Box::new(SpatialGridPartitioner::new(8, region, 0.5))),
        ),
        (
            "temporal",
            Box::new(|| Box::new(TemporalPartitioner::new(8, TimeMs(0), 45 * 60_000))),
        ),
    ];
    let mut rows = Vec::new();
    for (pname, build) in &builders {
        let store = PartitionedStore::build(&graph, build());
        for (qname, text) in &queries[3..] {
            let q = parse_query(text).expect("valid query");
            let mut best = f64::MAX;
            let mut touched = 0;
            let mut count = 0;
            for _ in 0..3 {
                let t = Instant::now();
                let (b, stats) = store.execute(&q);
                best = best.min(t.elapsed().as_secs_f64() * 1000.0);
                touched = stats.partitions_touched;
                count = b.rows.len();
            }
            rows.push(vec![
                pname.to_string(),
                qname.to_string(),
                format!("{count}"),
                format!("{touched}/8"),
                fmt(best, 2),
            ]);
        }
    }
    println!(
        "partitioned (8 partitions, A2 ablation):\n{}",
        table(&["partitioner", "query", "rows", "touched", "ms"], &rows)
    );

    // Parallel speedup: the heavy filter query over increasing partition
    // counts (a fan-out-friendly scan; tiny queries cannot amortise thread
    // startup).
    let q = parse_query(queries[2].1).expect("valid query");
    let mut rows = Vec::new();
    let mut base = None;
    for n in [1usize, 2, 4, 8] {
        let store = PartitionedStore::build(&graph, Box::new(HashPartitioner::new(n)));
        let mut best = f64::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let _ = store.execute(&q);
            best = best.min(t.elapsed().as_secs_f64() * 1000.0);
        }
        let b = *base.get_or_insert(best);
        rows.push(vec![format!("{n}"), fmt(best, 2), fmt(b / best, 2)]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel filter-query scaling (hash partitioning; host exposes {cores} core(s) — wall-clock speedup is bounded by that, so on a 1-core host the partitioning benefit shows as pruning, not speedup):\n{}",
        table(&["partitions/threads", "ms", "speedup"], &rows)
    );
}

/// Builds per-object trajectories from true (noise-free) simulator tracks.
fn true_tracks(seed: u64) -> Vec<datacron_model::Trajectory> {
    let data = generate_maritime(&MaritimeConfig {
        seed,
        n_vessels: 40,
        duration_ms: TimeMs::from_hours(8).millis(),
        report_interval_ms: 60_000,
        noise: NoiseModel::none(),
        frac_loitering: 0.0,
        frac_gap: 0.0,
        frac_drifting: 0.0,
        n_rendezvous_pairs: 0,
    });
    data.true_trajectories
}

/// E6 — maritime trajectory forecasting.
fn e6() {
    header("E6", "maritime trajectory forecasting (claim C5, 2D)");
    let history = true_tracks(100);
    let test = true_tracks(200);
    let region = datacron_sim::aegean_world().region;

    let mut markov = MarkovGridModel::new(Grid::new(region, 0.05).unwrap(), 60_000);
    markov.train_all(&history);
    let mut route = RouteModel::new(Grid::new(region, 0.02).unwrap());
    route.train_all(&history);

    let models: Vec<&dyn Predictor> = vec![
        &DeadReckoningPredictor,
        &ConstantTurnPredictor,
        &markov,
        &route,
    ];
    let horizons = [5i64, 10, 20, 30, 60];
    let mut rows = Vec::new();
    let mut all_reports = Vec::new();
    for model in models {
        let reports = evaluate_horizons(model, &test, &horizons, 30 * 60_000, 20 * 60_000);
        for r in &reports {
            rows.push(vec![
                r.model.clone(),
                format!("{}", r.horizon_min),
                format!("{}", r.stats.predicted),
                fmt(r.stats.median_m / 1000.0, 2),
                fmt(r.stats.p90_m / 1000.0, 2),
            ]);
        }
        all_reports.extend(reports);
    }
    // Machine-readable output for downstream plotting, when requested.
    if let Ok(dir) = std::env::var("DATACRON_JSON_DIR") {
        let path = std::path::Path::new(&dir).join("e6_forecast.json");
        match serde_json::to_string_pretty(&all_reports) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("could not write {}: {e}", path.display());
                } else {
                    println!("(wrote machine-readable results to {})", path.display());
                }
            }
            Err(e) => eprintln!("could not serialise E6 results: {e}"),
        }
    }
    println!(
        "{}",
        table(
            &["model", "horizon (min)", "cases", "median (km)", "p90 (km)"],
            &rows
        )
    );
    println!("(A4 ablation: route-network vs memoryless baselines as horizon grows)");
}

/// E7 — aviation forecasting (3D).
fn e7() {
    header("E7", "aviation trajectory forecasting (claim C5, 3D)");
    let data = aviation_workload();
    let test: Vec<datacron_model::Trajectory> = data
        .true_trajectories
        .iter()
        .filter(|t| t.len() > 50)
        .cloned()
        .collect();

    let horizons = [2i64, 5, 10, 15];
    let mut rows = Vec::new();
    let dr = evaluate_horizons(
        &DeadReckoningPredictor,
        &test,
        &horizons,
        10 * 60_000,
        5 * 60_000,
    );
    for r in &dr {
        // Vertical error via the profile predictor on the same anchors.
        let vp = VerticalProfilePredictor::default();
        let mut v_errors: Vec<f64> = Vec::new();
        for traj in &test {
            let pts = traj.points();
            let t0 = pts[0].time;
            let t_end = pts[pts.len() - 1].time;
            let mut anchor = t0 + 5 * 60_000;
            while anchor + r.horizon_min * 60_000 <= t_end {
                let prefix_end = pts.partition_point(|p| p.time <= anchor);
                if prefix_end >= 2 {
                    let target = anchor + r.horizon_min * 60_000;
                    let truth_idx = pts.partition_point(|p| p.time <= target);
                    if truth_idx > 0 && truth_idx < pts.len() {
                        if let Some(alt) = vp.predict_alt(&pts[..prefix_end], target) {
                            v_errors.push((alt - pts[truth_idx].alt_m).abs());
                        }
                    }
                }
                anchor = anchor + 10 * 60_000;
            }
        }
        v_errors.sort_by(|a, b| a.total_cmp(b));
        let v_med = v_errors
            .get(v_errors.len() / 2)
            .copied()
            .unwrap_or(f64::NAN);
        rows.push(vec![
            format!("{}", r.horizon_min),
            format!("{}", r.stats.predicted),
            fmt(r.stats.median_m / 1000.0, 2),
            fmt(r.stats.p90_m / 1000.0, 2),
            fmt(v_med, 0),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "horizon (min)",
                "cases",
                "horiz median (km)",
                "horiz p90 (km)",
                "vert median (m)"
            ],
            &rows
        )
    );
}

/// E8 — CEP latency & throughput.
fn e8() {
    header(
        "E8",
        "event recognition latency & throughput (claims C6, C8)",
    );
    let data = maritime_workload(1);
    let reports = reports_of(&data);

    // Detector-suite throughput + per-report latency percentiles.
    let hist = datacron_stream::LatencyHistogram::new();
    let mut loiter = LoiteringDetector::default();
    let mut rendezvous = RendezvousDetector::new(data.world.region);
    let mut cpa = CpaDetector::default();
    let mut n_events = 0usize;
    let t = Instant::now();
    for r in &reports {
        let t0 = Instant::now();
        if loiter.update(r).is_some() {
            n_events += 1;
        }
        n_events += rendezvous.update(r).len();
        n_events += cpa.update(r).len();
        hist.record_since(t0);
    }
    let secs = t.elapsed().as_secs_f64();
    let (p50, p99, max) = hist.summary_us();
    let rows = vec![vec![
        format!("{}", reports.len()),
        format!("{n_events}"),
        fmt(reports.len() as f64 / secs / 1000.0, 0),
        format!("{p50}"),
        format!("{p99}"),
        format!("{max}"),
    ]];
    println!(
        "maritime detector suite (loitering + rendezvous + CPA):\n{}",
        table(
            &[
                "reports",
                "events",
                "kreports/s",
                "p50 (µs)",
                "p99 (µs)",
                "max (µs)"
            ],
            &rows
        )
    );

    // NFA pattern-count sweep (A5 ablation: shared evaluation cost model).
    let mut rows = Vec::new();
    for n_patterns in [1usize, 2, 4, 8] {
        let mut runs: Vec<datacron_cep::Runs<u32>> = (0..n_patterns)
            .map(|i| {
                datacron_cep::Runs::new(datacron_cep::Pattern::new(
                    format!("p{i}"),
                    vec![
                        datacron_cep::PatternElem::single(move |e: &u32| *e == i as u32),
                        datacron_cep::PatternElem::single(move |e: &u32| *e == (i + 1) as u32),
                    ],
                    60_000,
                ))
            })
            .collect();
        let events: Vec<u32> = (0..200_000u32).map(|i| i % 10).collect();
        let t = Instant::now();
        let mut matches = 0usize;
        for (i, e) in events.iter().enumerate() {
            for r in &mut runs {
                matches += r.on_event(TimeMs(i as i64 * 10), e).len();
            }
        }
        let secs = t.elapsed().as_secs_f64();
        rows.push(vec![
            format!("{n_patterns}"),
            format!("{matches}"),
            fmt(events.len() as f64 / secs / 1000.0, 0),
        ]);
    }
    println!(
        "NFA engine, pattern-count sweep (200k events):\n{}",
        table(&["patterns", "matches", "kevents/s"], &rows)
    );
}

/// E9 — complex-event forecasting.
fn e9() {
    header("E9", "complex-event forecasting (claim C6)");
    // (a) Rendezvous forecasting by CPA approach: how early does the
    // forecaster fire before a true rendezvous, and how precise is it?
    let data = maritime_workload(1);
    let reports = reports_of(&data);
    let mut forecaster = CpaDetector::default().with_thresholds(800.0, 30 * 60_000);
    let mut alerts: Vec<datacron_model::EventRecord> = Vec::new();
    for r in &reports {
        alerts.extend(forecaster.update(r));
    }
    // CPA forecasts *close encounters*; score each alert against what the
    // true trajectories subsequently did: did the pair actually come within
    // the forecast distance before the predicted CPA time (+50% slack)?
    let traj_of = |obj: datacron_model::ObjectId| &data.true_trajectories[obj.raw() as usize];
    let mut confirmed = 0usize;
    let mut lead_times: Vec<f64> = Vec::new();
    for a in &alerts {
        let (o1, o2) = (a.objects[0], a.objects[1]);
        let (t1, t2) = (traj_of(o1), traj_of(o2));
        let t_alert = a.interval.start;
        let deadline = a.interval.end + a.interval.duration_ms() / 2;
        let mut t = t_alert;
        let mut came_close_at = None;
        while t <= deadline {
            if let (Some(p1), Some(p2)) = (t1.position_at(t), t2.position_at(t)) {
                if p1.haversine_m(&p2) <= 800.0 {
                    came_close_at = Some(t);
                    break;
                }
            }
            t = t + 60_000;
        }
        if let Some(tc) = came_close_at {
            confirmed += 1;
            // Lead time only makes sense for alerts raised while the pair
            // was still apart (an alert during the encounter has lead 0).
            if tc > t_alert {
                lead_times.push((tc - t_alert) as f64 / 60_000.0);
            }
        }
    }
    // Recall over the planted rendezvous (whose vessels certainly met).
    let rendezvous: Vec<_> = data.truth.events_of(EventKind::Rendezvous).collect();
    let forecast_rendezvous = rendezvous
        .iter()
        .filter(|rv| {
            let p = (rv.objects[0], rv.objects[1]);
            alerts.iter().any(|a| {
                ((a.objects[0] == p.0 && a.objects[1] == p.1)
                    || (a.objects[0] == p.1 && a.objects[1] == p.0))
                    && a.interval.start <= rv.interval.start
            })
        })
        .count();
    lead_times.sort_by(|a, b| a.total_cmp(b));
    let med_lead = lead_times
        .get(lead_times.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    let rows = vec![vec![
        format!("{}", alerts.len()),
        fmt(confirmed as f64 / alerts.len().max(1) as f64, 2),
        fmt(med_lead, 1),
        format!("{}/{}", forecast_rendezvous, rendezvous.len()),
    ]];
    println!(
        "close-encounter forecasting by CPA (alert = predicted approach < 800 m within 30 min):\n{}",
        table(
            &["alerts", "precision (pair met < 800 m)", "median lead (min)", "rendezvous forecast"],
            &rows
        )
    );

    // (b) Pattern Markov chain: completion probability of gap→dark given a
    // stop, as the event budget grows. Trained on the workload's low-level
    // event sequences.
    let mut synopsis = CriticalPointDetector::new(SynopsisConfig::default());
    let mut per_object: std::collections::BTreeMap<datacron_model::ObjectId, Vec<EventKind>> =
        std::collections::BTreeMap::new();
    let mut pts = Vec::new();
    for r in &reports {
        pts.clear();
        synopsis.update(r, &mut pts);
        for cp in &pts {
            if let Some(ev) = datacron_cep::critical_to_event(cp) {
                per_object.entry(ev.objects[0]).or_default().push(ev.kind);
            }
        }
    }
    let mut pmc = PatternMarkovChain::new();
    for seq in per_object.values() {
        pmc.train(seq);
    }
    let mut rows = Vec::new();
    for budget in [1usize, 2, 4, 8, 16] {
        rows.push(vec![
            format!("{budget}"),
            fmt(
                pmc.completion_probability(EventKind::StopStart, &[EventKind::StopEnd], budget),
                3,
            ),
            fmt(
                pmc.completion_probability(EventKind::GapStart, &[EventKind::GapEnd], budget),
                3,
            ),
            fmt(
                pmc.completion_probability(
                    EventKind::SpeedChange,
                    &[EventKind::StopStart, EventKind::StopEnd],
                    budget,
                ),
                3,
            ),
        ]);
    }
    println!(
        "pattern-Markov-chain completion probabilities (trained on {} objects):\n{}",
        per_object.len(),
        table(
            &[
                "event budget",
                "P(stop completes)",
                "P(gap closes)",
                "P(slow→stop→resume)"
            ],
            &rows
        )
    );
}

/// E10 — visual-analytics aggregation rates.
fn e10() {
    header("E10", "visual analytics aggregation (claim C7)");
    let data = maritime_workload(2);
    let reports = reports_of(&data);
    println!("workload: {} reports\n", reports.len());

    let mut rows = Vec::new();
    for cell_deg in [0.02, 0.05, 0.1] {
        let grid = Grid::new(data.world.region, cell_deg).unwrap();
        let mut density = DensityGrid::new(grid);
        let t = Instant::now();
        for r in &reports {
            density.add(&r.position());
        }
        let build_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let top = density.top_k(10);
        let topk_us = t.elapsed().as_secs_f64() * 1e6;
        rows.push(vec![
            fmt(cell_deg, 2),
            format!("{}", density.occupied_cells()),
            fmt(reports.len() as f64 / build_secs / 1e6, 2),
            fmt(topk_us, 0),
            fmt(top.first().map(|h| h.weight).unwrap_or(0.0), 0),
        ]);
    }
    println!(
        "density grids:\n{}",
        table(
            &[
                "cell (deg)",
                "occupied cells",
                "Mreports/s",
                "top-10 (µs)",
                "max cell weight"
            ],
            &rows
        )
    );

    // Hot paths: segment density over true trajectories (the paper's
    // "hot spots / paths").
    let grid = Grid::new(data.world.region, 0.05).unwrap();
    let mut paths = DensityGrid::new(grid);
    let t = Instant::now();
    let mut segments = 0usize;
    for traj in &data.true_trajectories {
        for w in traj.points().windows(2) {
            paths.add_segment(&w[0].position(), &w[1].position());
            segments += 1;
        }
    }
    let secs = t.elapsed().as_secs_f64();
    println!(
        "hot paths: {} segments rasterised in {:.0} ms ({:.2} Mseg/s), {} cells; top corridor cell weight {:.0}",
        segments,
        secs * 1000.0,
        segments as f64 / secs / 1e6,
        paths.occupied_cells(),
        paths.top_k(1).first().map(|h| h.weight).unwrap_or(0.0)
    );

    // OD flows from voyage start/end ports (nearest port at track ends).
    let mut flows = FlowMatrix::new();
    let ports = &data.world.ports;
    let nearest = |p: datacron_geo::GeoPoint| {
        ports
            .iter()
            .min_by(|a, b| {
                a.location
                    .fast_dist2_m2(&p)
                    .total_cmp(&b.location.fast_dist2_m2(&p))
            })
            .map(|port| port.name.clone())
            .unwrap()
    };
    let t = Instant::now();
    for traj in &data.true_trajectories {
        if let (Some(first), Some(last)) = (traj.first(), traj.last()) {
            flows.record(&nearest(first.position()), &nearest(last.position()));
        }
    }
    let secs = t.elapsed().as_secs_f64();
    println!(
        "OD flow matrix built from {} trajectories in {:.1} ms; top flows:",
        data.true_trajectories.len(),
        secs * 1000.0
    );
    for (from, to, count) in flows.top_k(5) {
        println!("  {from} → {to}: {count}");
    }
}

/// E11 — end-to-end pipeline latency (the ms claim).
fn e11() {
    header("E11", "end-to-end pipeline latency (claim C8)");
    let data = maritime_workload(1);
    let reports = reports_of(&data);
    let mut rows = Vec::new();
    for (label, enable_rdf) in [("full (with RDF)", true), ("analytics only", false)] {
        let mut pipeline = Pipeline::new(PipelineConfig {
            enable_rdf,
            ..PipelineConfig::default()
        });
        let t = Instant::now();
        for r in &reports {
            pipeline.process(r);
        }
        let secs = t.elapsed().as_secs_f64();
        let m = pipeline.metrics();
        let total = m.latency_table().last().unwrap().1;
        rows.push(vec![
            label.into(),
            fmt(reports.len() as f64 / secs / 1000.0, 0),
            format!("{}", total.p50_us),
            format!("{}", total.p99_us),
            format!("{}", total.max_us),
            fmt(m.compression_ratio() * 100.0, 1),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "configuration",
                "kreports/s",
                "p50 (µs)",
                "p99 (µs)",
                "max (µs)",
                "compression (%)"
            ],
            &rows
        )
    );

    // Per-stage breakdown of the full configuration.
    let mut pipeline = Pipeline::new(PipelineConfig::default());
    for r in &reports {
        pipeline.process(r);
    }
    let mut rows = Vec::new();
    for (name, lat) in pipeline.metrics().latency_table() {
        rows.push(vec![
            name.to_string(),
            format!("{}", lat.p50_us),
            format!("{}", lat.p99_us),
            format!("{}", lat.max_us),
        ]);
    }
    println!(
        "per-stage latency (full configuration):\n{}",
        table(&["stage", "p50 (µs)", "p99 (µs)", "max (µs)"], &rows)
    );
}

/// E12 — stream-engine scaling.
fn e12() {
    header(
        "E12",
        "stream engine throughput & shard scaling (substrate)",
    );
    use datacron_stream::*;

    // Operator throughput, single thread.
    let n = 2_000_000i64;
    let msgs: Vec<Message<i64>> = (0..n)
        .map(|i| Message::record(TimeMs(i), i))
        .chain(std::iter::once(Message::End))
        .collect();
    let mut op = MapOp(|x: i64| x.wrapping_mul(31).wrapping_add(7));
    let t = Instant::now();
    let out = op.run(msgs);
    let secs = t.elapsed().as_secs_f64();
    println!(
        "map operator: {:.1} Mrec/s ({} records)\n",
        n as f64 / secs / 1e6,
        out.len() - 1
    );

    // Shard scaling with a CPU-heavy keyed operator.
    let work = |x: i64| {
        let mut acc = x as u64 | 1;
        for _ in 0..40_000 {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        acc as i64
    };
    let n = 20_000i64;
    let mut rows = Vec::new();
    let mut base = None;
    for shards in [1usize, 2, 4, 8] {
        let msgs: Vec<Message<i64>> = (0..n)
            .map(|i| Message::record(TimeMs(i), i))
            .chain(std::iter::once(Message::End))
            .collect();
        let t = Instant::now();
        let (rx, h0) = run_source(msgs, 4096);
        let (parts, h1) = shard_by_key(rx, shards, |x: &i64| *x, 4096);
        let mut handles = vec![h0, h1];
        let mut outs = Vec::new();
        for part in parts {
            let (rx, h) = spawn_operator(part, MapOp(work), 4096);
            outs.push(rx);
            handles.push(h);
        }
        let (rx, hm) = merge_shards(outs, 4096);
        handles.push(hm);
        let count = collect_messages(rx)
            .iter()
            .filter(|m| m.as_record().is_some())
            .count();
        for h in handles {
            h.join();
        }
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(count, n as usize);
        let b = *base.get_or_insert(secs);
        rows.push(vec![
            format!("{shards}"),
            fmt(n as f64 / secs / 1000.0, 0),
            fmt(b / secs, 2),
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "shard scaling (CPU-bound keyed stage, 20k records × ~10 µs; host exposes {cores} core(s), which bounds achievable speedup):\n{}",
        table(&["shards", "krec/s", "speedup"], &rows)
    );

    // Window correctness under disorder.
    let data = datacron_bench::maritime_small();
    let delivery = data.reports_delivery_order();
    let src: Vec<(TimeMs, ())> = delivery.iter().map(|o| (o.report.time, ())).collect();
    let mut window: KeyedWindowOp<u8, CountAny<()>, _> =
        KeyedWindowOp::new(WindowSpec::tumbling(10 * 60_000), |_: &()| 0u8);
    let msgs: Vec<Message<()>> =
        with_watermarks(src, BoundedOutOfOrderness::new(5_000, 32)).collect();
    let out = window.run(msgs);
    let windows: u64 = out
        .iter()
        .filter_map(|m| m.as_record())
        .map(|r| r.payload.value)
        .sum();
    println!(
        "windowing under out-of-order delivery: {} reports counted across fired windows, {} late-dropped (watermark slack 5 s, delivery jitter ≤ 4 s)",
        windows,
        window.late_count()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    println!("# datAcron reproduction — experiment report");
    println!("(regenerate with: cargo run --release -p datacron-bench --bin report)");
    let t = Instant::now();
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
    println!("\nreport generated in {:.1} s", t.elapsed().as_secs_f64());
}
