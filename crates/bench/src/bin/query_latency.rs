//! E14 — query latency vs. store size vs. partition count.
//!
//! ```sh
//! cargo run --release -p datacron-bench --bin query_latency           # full (up to 1M triples)
//! cargo run --release -p datacron-bench --bin query_latency -- quick  # 10k + 100k only
//! ```
//!
//! Runs the canonical query mix (point lookup, 3-pattern star, 2-hop
//! path, spatial range) against stores of 10k / 100k / 1M triples on the
//! morsel-driven executor, records per-shape p50/p99 latency and the
//! p99/p50 tail ratio (asserted < 3× on the star — morsel sizing bounds
//! the largest work unit, so one oversized predicate range can no longer
//! serialize the query), compares the fast planner's planning time
//! against the retained reference planner, sweeps the hash-partition
//! count and the worker count (1 → 8, with `host_cores` recorded so
//! flat curves on small hosts read as what they are), and writes
//! everything to `BENCH_query.json` at the repo root.

use datacron_geo::{GeoPoint, TimeMs};
use datacron_rdf::{
    execute, execute_morsel, execute_reference, parse_query, Graph, HashPartitioner, MorselConfig,
    PartitionedStore, SelectQuery, Term,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Deterministic xorshift64* so every run builds the same stores.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds an entity graph of ~`n_triples` triples: each entity carries
/// `type`, `speed`, `pos`, `at` and one `link` edge — the shape the
/// datAcron mapper produces per semantic node.
fn build_graph(n_triples: usize) -> Graph {
    let entities = (n_triples / 5).max(1) as u64;
    let mut rng = Rng(0xE14_5EED);
    let mut g = Graph::new();
    for i in 0..entities {
        let s = Term::iri(format!("e{i}"));
        let class = if rng.below(4) == 0 { "Buoy" } else { "Vessel" };
        g.insert(&s, &Term::iri("type"), &Term::iri(class));
        g.insert(
            &s,
            &Term::iri("speed"),
            &Term::double(rng.below(200) as f64 / 10.0),
        );
        g.insert(
            &s,
            &Term::iri("pos"),
            &Term::point(GeoPoint::new(
                20.0 + rng.below(10_000) as f64 / 1000.0,
                34.0 + rng.below(6_000) as f64 / 1000.0,
            )),
        );
        g.insert(
            &s,
            &Term::iri("at"),
            &Term::time(TimeMs((rng.below(21_600) * 1000) as i64)),
        );
        let other = Term::iri(format!("e{}", rng.below(entities)));
        g.insert(&s, &Term::iri("link"), &other);
    }
    g.commit();
    g
}

/// The canonical mix. The star keeps a selective filter so result
/// materialisation does not drown the join being measured.
fn query_mix() -> Vec<(&'static str, SelectQuery)> {
    let shapes = [
        ("lookup", "SELECT ?s WHERE { e0 speed ?s }"),
        (
            "star3",
            "SELECT ?v ?s ?t WHERE { ?v type Vessel . ?v speed ?s . ?v at ?t . FILTER (?s >= 19.0) }",
        ),
        ("path2", "SELECT ?a ?b WHERE { ?a link ?b . ?b type Buoy }"),
        (
            "spatial",
            "SELECT ?v WHERE { ?v pos ?g . FILTER st_within(?g, 24.0, 36.0, 24.5, 36.5) }",
        ),
    ];
    shapes
        .into_iter()
        .map(|(name, text)| (name, parse_query(text).expect("canonical query parses")))
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

struct ShapeResult {
    name: &'static str,
    rows: usize,
    p50_us: u64,
    p99_us: u64,
    planning_p50_us: u64,
}

fn measure_shape(g: &Graph, name: &'static str, q: &SelectQuery, iters: usize) -> ShapeResult {
    let cfg = MorselConfig::default();
    let mut lat = Vec::with_capacity(iters);
    let mut plan = Vec::with_capacity(iters);
    let mut rows = 0;
    // Unmeasured warmup: the first executions after a bulk build pay page
    // faults and allocator growth that say nothing about steady state.
    for _ in 0..2 {
        let _ = execute_morsel(g, q, &cfg);
    }
    for _ in 0..iters {
        // Each sample is the best of three back-to-back runs: a
        // structural tail (an oversized work unit serializing the query)
        // shows up in every run and survives the min; a scheduler
        // preemption hits one run and does not. The p99/p50 assertion
        // below is about the former.
        let mut best = u64::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let (b, stats, _) = execute_morsel(g, q, &cfg);
            best = best.min(t.elapsed().as_micros() as u64);
            plan.push(stats.planning_us);
            rows = b.len();
        }
        lat.push(best);
    }
    lat.sort_unstable();
    plan.sort_unstable();
    ShapeResult {
        name,
        rows,
        p50_us: percentile(&lat, 50.0),
        p99_us: percentile(&lat, 99.0),
        planning_p50_us: percentile(&plan, 50.0),
    }
}

/// Median planning time of both engines on one query (the reference
/// engine times its O(matches) `count_pattern` planner the same way the
/// fast engine times its O(log n) `estimate_pattern` planner).
fn planning_comparison(g: &Graph, q: &SelectQuery, iters: usize) -> (u64, u64) {
    let mut fast = Vec::new();
    let mut reference = Vec::new();
    for _ in 0..iters {
        fast.push(execute(g, q).1.planning_us);
        reference.push(execute_reference(g, q).1.planning_us);
    }
    fast.sort_unstable();
    reference.sort_unstable();
    (percentile(&fast, 50.0), percentile(&reference, 50.0))
}

struct SweepResult {
    partitions: usize,
    p50_us: u64,
    partitions_probed: usize,
}

fn partition_sweep(g: &Graph, q: &SelectQuery, iters: usize) -> Vec<SweepResult> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| {
            let store = PartitionedStore::build(g, Box::new(HashPartitioner::new(n)));
            let mut lat = Vec::with_capacity(iters);
            let mut probed = 0;
            let _ = store.execute(q);
            for _ in 0..iters {
                let t = Instant::now();
                let (_, stats) = store.execute(q);
                lat.push(t.elapsed().as_micros() as u64);
                probed = stats.partitions_probed;
            }
            lat.sort_unstable();
            SweepResult {
                partitions: n,
                p50_us: percentile(&lat, 50.0),
                partitions_probed: probed,
            }
        })
        .collect()
}

struct WorkerSweepResult {
    workers: usize,
    p50_us: u64,
    workers_used: usize,
    morsels: u64,
    steals: u64,
}

/// Worker-count sweep at a fixed 8-way partitioning: the same morsel
/// stream drained by pools of 1 → 8 workers. On a host with fewer cores
/// than workers the curve legitimately flattens at `host_cores`.
fn worker_sweep(g: &Graph, q: &SelectQuery, iters: usize) -> Vec<WorkerSweepResult> {
    let store = PartitionedStore::build(g, Box::new(HashPartitioner::new(8)));
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|workers| {
            let cfg = MorselConfig::with_workers(workers);
            let mut lat = Vec::with_capacity(iters);
            let mut last = None;
            let _ = store.execute_with(q, &cfg);
            for _ in 0..iters {
                let t = Instant::now();
                let (_, stats) = store.execute_with(q, &cfg);
                lat.push(t.elapsed().as_micros() as u64);
                last = Some(stats);
            }
            lat.sort_unstable();
            let stats = last.expect("at least one iteration");
            WorkerSweepResult {
                workers,
                p50_us: percentile(&lat, 50.0),
                workers_used: stats.workers_used,
                morsels: stats.morsels,
                steals: stats.steals,
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick");
    let sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mix = query_mix();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"experiment\": \"E14\",\n  \"engine\": \"morsel\",\n  \"host_cores\": {host_cores},\n  \"sizes\": [\n"
    );
    for (si, &n) in sizes.iter().enumerate() {
        eprintln!("building store: {n} triples");
        let g = build_graph(n);
        let iters = match n {
            0..=10_000 => 200,
            10_001..=100_000 => 50,
            _ => 10,
        };

        let mut shapes = Vec::new();
        for (name, q) in &mix {
            let r = measure_shape(&g, name, q, iters);
            let ratio = r.p99_us as f64 / r.p50_us.max(1) as f64;
            eprintln!(
                "  {name:8} p50 {}us p99 {}us tail {ratio:.2}x ({} rows, planning {}us)",
                r.p50_us, r.p99_us, r.rows, r.planning_p50_us
            );
            // The tail-amplification bound the morsel sizing buys: no
            // single work unit can serialize the star query, so its p99
            // stays within 3× of p50. Only asserted where the latency is
            // large enough that scheduler noise is not the tail.
            if r.name == "star3" && r.p50_us >= 500 {
                assert!(
                    ratio < 3.0,
                    "star3 tail amplification {ratio:.2}x >= 3x at {n} triples \
                     (p50 {}us, p99 {}us)",
                    r.p50_us,
                    r.p99_us
                );
            }
            shapes.push(r);
        }

        let star3 = &mix.iter().find(|(n, _)| *n == "star3").unwrap().1;
        let (fast_us, reference_us) = planning_comparison(&g, star3, iters.min(20));
        let speedup = reference_us as f64 / fast_us.max(1) as f64;
        eprintln!(
            "  planning star3: fast {fast_us}us vs reference {reference_us}us ({speedup:.1}x)"
        );

        let sweep = partition_sweep(&g, star3, iters.min(20));
        for s in &sweep {
            eprintln!(
                "  partitions={} p50 {}us probed {}",
                s.partitions, s.p50_us, s.partitions_probed
            );
        }

        let wsweep = worker_sweep(&g, star3, iters.min(20));
        let base = wsweep.first().map(|w| w.p50_us).unwrap_or(0);
        for w in &wsweep {
            eprintln!(
                "  workers={} p50 {}us used {} morsels {} steals {} (speedup {:.2}x)",
                w.workers,
                w.p50_us,
                w.workers_used,
                w.morsels,
                w.steals,
                base as f64 / w.p50_us.max(1) as f64
            );
        }

        let _ = write!(
            out,
            "    {{\n      \"triples\": {},\n      \"queries\": [\n",
            g.len()
        );
        for (qi, r) in shapes.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"name\": \"{}\", \"rows\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p99_p50_ratio\": {:.2}, \"planning_p50_us\": {}}}{}",
                r.name,
                r.rows,
                r.p50_us,
                r.p99_us,
                r.p99_us as f64 / r.p50_us.max(1) as f64,
                r.planning_p50_us,
                if qi + 1 < shapes.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ],\n      \"planning_comparison_star3\": {{\"fast_us\": {fast_us}, \"reference_us\": {reference_us}, \"speedup\": {speedup:.2}}},\n"
        );
        out.push_str("      \"partition_sweep\": [\n");
        for (pi, s) in sweep.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"partitions\": {}, \"p50_us\": {}, \"partitions_probed\": {}}}{}",
                s.partitions,
                s.p50_us,
                s.partitions_probed,
                if pi + 1 < sweep.len() { "," } else { "" }
            );
        }
        out.push_str("      ],\n      \"worker_sweep\": [\n");
        for (wi, w) in wsweep.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"workers\": {}, \"p50_us\": {}, \"workers_used\": {}, \"morsels\": {}, \"steals\": {}, \"speedup_vs_1\": {:.2}}}{}",
                w.workers,
                w.p50_us,
                w.workers_used,
                w.morsels,
                w.steals,
                base as f64 / w.p50_us.max(1) as f64,
                if wi + 1 < wsweep.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "      ]\n    }}{}\n",
            if si + 1 < sizes.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    // The repo root, resolved from this crate's manifest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(path, &out).expect("write BENCH_query.json");
    eprintln!("wrote {path}");
}
