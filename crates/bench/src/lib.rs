//! Shared workload builders for the experiment suite (E1–E12).
//!
//! Every experiment in EXPERIMENTS.md draws its data from these builders so
//! Criterion benches (timing) and the `report` binary (quality metrics)
//! measure the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use datacron_geo::TimeMs;
use datacron_model::PositionReport;
use datacron_sim::{
    generate_aviation, generate_maritime, AviationConfig, AviationData, MaritimeConfig,
    MaritimeData, NoiseModel,
};

/// The standard maritime workload: 6 hours, AIS every 10 s, scripted
/// anomalies. `scale` multiplies the fleet size (1 → 50 vessels ≈ 108k
/// reports).
pub fn maritime_workload(scale: usize) -> MaritimeData {
    generate_maritime(&MaritimeConfig {
        seed: 4242,
        n_vessels: 50 * scale,
        duration_ms: TimeMs::from_hours(6).millis(),
        report_interval_ms: 10_000,
        noise: NoiseModel {
            max_delay_ms: 2_000,
            ..NoiseModel::default()
        },
        frac_loitering: 0.1,
        frac_gap: 0.08,
        frac_drifting: 0.04,
        n_rendezvous_pairs: 2 * scale,
    })
}

/// A smaller maritime workload for per-iteration benches.
pub fn maritime_small() -> MaritimeData {
    generate_maritime(&MaritimeConfig {
        seed: 777,
        n_vessels: 20,
        duration_ms: TimeMs::from_hours(2).millis(),
        report_interval_ms: 10_000,
        noise: NoiseModel::default(),
        frac_loitering: 0.1,
        frac_gap: 0.1,
        frac_drifting: 0.05,
        n_rendezvous_pairs: 1,
    })
}

/// The standard aviation workload: 4 hours, ADS-B every 5 s.
pub fn aviation_workload() -> AviationData {
    generate_aviation(&AviationConfig {
        seed: 4343,
        n_flights: 60,
        duration_ms: TimeMs::from_hours(4).millis(),
        report_interval_ms: 5_000,
        frac_holding: 0.2,
        ..AviationConfig::default()
    })
}

/// Extracts the plain report vector (event-time order) from maritime data.
pub fn reports_of(data: &MaritimeData) -> Vec<PositionReport> {
    data.reports.iter().map(|o| o.report).collect()
}

/// Renders a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Renders a markdown-style table from headers and rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&row(&headers
        .iter()
        .map(|h| h.to_string())
        .collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&row(&headers
        .iter()
        .map(|_| "---".to_string())
        .collect::<Vec<_>>()));
    out.push('\n');
    for r in rows {
        out.push_str(&row(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = maritime_small();
        let b = maritime_small();
        assert_eq!(a.reports.len(), b.reports.len());
    }

    #[test]
    fn table_rendering() {
        let t = table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "| a | b |\n| --- | --- |\n| 1 | 2 |\n");
    }
}
