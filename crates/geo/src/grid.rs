//! Equi-angular space tiling.
//!
//! A [`Grid`] divides a bounding region into fixed-size cells addressed by
//! [`CellId`]. Grids are the workhorse discretisation in this reproduction:
//! link-discovery blocking, spatial RDF partitioning, Markov-grid
//! forecasting and heatmap aggregation all tile space the same way.

use crate::bbox::BoundingBox;
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// A cell address within a [`Grid`]: column (x, west→east) and row
/// (y, south→north).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl CellId {
    /// Packs the cell address into a single `u64` (row-major), useful as a
    /// compact hash/partition key.
    pub fn pack(self) -> u64 {
        (u64::from(self.y) << 32) | u64::from(self.x)
    }

    /// Inverse of [`CellId::pack`].
    pub fn unpack(key: u64) -> CellId {
        CellId {
            x: (key & 0xFFFF_FFFF) as u32,
            y: (key >> 32) as u32,
        }
    }
}

/// A uniform lon/lat grid over a bounding region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    extent: BoundingBox,
    cell_deg: f64,
    cols: u32,
    rows: u32,
}

impl Grid {
    /// Creates a grid over `extent` with square cells of `cell_deg` degrees.
    ///
    /// Returns `None` for non-positive cell sizes or empty extents.
    pub fn new(extent: BoundingBox, cell_deg: f64) -> Option<Self> {
        if cell_deg <= 0.0 || cell_deg.is_nan() || extent.is_empty() {
            return None;
        }
        let cols = (extent.width_deg() / cell_deg).ceil().max(1.0) as u32;
        let rows = (extent.height_deg() / cell_deg).ceil().max(1.0) as u32;
        Some(Self {
            extent,
            cell_deg,
            cols,
            rows,
        })
    }

    /// The infallible whole-earth fallback: 1° cells over
    /// (-180, -90)..(180, 90). Callers that must produce *some* grid when
    /// a configured extent turns out to be degenerate (empty region, NaN
    /// cell size) fall back to this instead of panicking.
    pub fn global() -> Self {
        Self {
            extent: BoundingBox::new(-180.0, -90.0, 180.0, 90.0),
            cell_deg: 1.0,
            cols: 360,
            rows: 180,
        }
    }

    /// The grid's extent.
    pub fn extent(&self) -> &BoundingBox {
        &self.extent
    }

    /// Cell edge length in degrees.
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> u64 {
        u64::from(self.cols) * u64::from(self.rows)
    }

    /// The cell containing `p`, or `None` when `p` is outside the extent.
    /// Points on the east/north boundary are assigned to the last cell.
    pub fn cell_of(&self, p: &GeoPoint) -> Option<CellId> {
        if !self.extent.contains(p) {
            return None;
        }
        let x = (((p.lon - self.extent.min_lon) / self.cell_deg) as u32).min(self.cols - 1);
        let y = (((p.lat - self.extent.min_lat) / self.cell_deg) as u32).min(self.rows - 1);
        Some(CellId { x, y })
    }

    /// Like [`Grid::cell_of`] but clamps points outside the extent to the
    /// nearest border cell. Never fails.
    pub fn cell_of_clamped(&self, p: &GeoPoint) -> CellId {
        let lon = p.lon.clamp(self.extent.min_lon, self.extent.max_lon);
        let lat = p.lat.clamp(self.extent.min_lat, self.extent.max_lat);
        self.cell_of(&GeoPoint::new(lon, lat))
            .expect("clamped point is inside extent")
    }

    /// The bounding box of a cell. Cells on the east/north edges may extend
    /// past the grid extent (the grid covers the extent with whole cells).
    pub fn cell_bbox(&self, cell: CellId) -> BoundingBox {
        let min_lon = self.extent.min_lon + f64::from(cell.x) * self.cell_deg;
        let min_lat = self.extent.min_lat + f64::from(cell.y) * self.cell_deg;
        BoundingBox::new(
            min_lon,
            min_lat,
            min_lon + self.cell_deg,
            min_lat + self.cell_deg,
        )
    }

    /// The centre of a cell.
    pub fn cell_center(&self, cell: CellId) -> GeoPoint {
        self.cell_bbox(cell).center()
    }

    /// The up-to-eight neighbouring cells (fewer on the grid border).
    pub fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let mut out = Vec::with_capacity(8);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = i64::from(cell.x) + dx;
                let ny = i64::from(cell.y) + dy;
                if nx >= 0 && ny >= 0 && (nx as u32) < self.cols && (ny as u32) < self.rows {
                    out.push(CellId {
                        x: nx as u32,
                        y: ny as u32,
                    });
                }
            }
        }
        out
    }

    /// All cells whose boxes intersect `query` (clipped to the grid extent).
    pub fn cells_intersecting(&self, query: &BoundingBox) -> Vec<CellId> {
        if !self.extent.intersects(query) {
            return Vec::new();
        }
        let lo = self.cell_of_clamped(&GeoPoint::new(query.min_lon, query.min_lat));
        let hi = self.cell_of_clamped(&GeoPoint::new(query.max_lon, query.max_lat));
        let mut out = Vec::with_capacity(
            ((hi.x - lo.x + 1) as usize).saturating_mul((hi.y - lo.y + 1) as usize),
        );
        for y in lo.y..=hi.y {
            for x in lo.x..=hi.x {
                out.push(CellId { x, y });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> Grid {
        Grid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 1.0).unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(Grid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), 0.0).is_none());
        assert!(Grid::new(BoundingBox::new(0.0, 0.0, 10.0, 10.0), -1.0).is_none());
        assert!(Grid::new(BoundingBox::EMPTY, 1.0).is_none());
        let g = grid_10x10();
        assert_eq!((g.cols(), g.rows()), (10, 10));
        assert_eq!(g.cell_count(), 100);
    }

    #[test]
    fn non_divisible_extent_rounds_up() {
        let g = Grid::new(BoundingBox::new(0.0, 0.0, 10.5, 3.2), 1.0).unwrap();
        assert_eq!((g.cols(), g.rows()), (11, 4));
    }

    #[test]
    fn cell_of_basics() {
        let g = grid_10x10();
        assert_eq!(
            g.cell_of(&GeoPoint::new(0.5, 0.5)),
            Some(CellId { x: 0, y: 0 })
        );
        assert_eq!(
            g.cell_of(&GeoPoint::new(9.99, 9.99)),
            Some(CellId { x: 9, y: 9 })
        );
        // Boundary points fold into the last cell.
        assert_eq!(
            g.cell_of(&GeoPoint::new(10.0, 10.0)),
            Some(CellId { x: 9, y: 9 })
        );
        assert_eq!(g.cell_of(&GeoPoint::new(10.1, 5.0)), None);
        assert_eq!(g.cell_of(&GeoPoint::new(-0.1, 5.0)), None);
    }

    #[test]
    fn cell_of_clamped_never_fails() {
        let g = grid_10x10();
        assert_eq!(
            g.cell_of_clamped(&GeoPoint::new(-100.0, -100.0)),
            CellId { x: 0, y: 0 }
        );
        assert_eq!(
            g.cell_of_clamped(&GeoPoint::new(100.0, 100.0)),
            CellId { x: 9, y: 9 }
        );
    }

    #[test]
    fn cell_bbox_round_trip() {
        let g = grid_10x10();
        let cell = CellId { x: 3, y: 7 };
        let bbox = g.cell_bbox(cell);
        assert_eq!(bbox, BoundingBox::new(3.0, 7.0, 4.0, 8.0));
        assert_eq!(g.cell_of(&bbox.center()), Some(cell));
        assert_eq!(g.cell_center(cell), GeoPoint::new(3.5, 7.5));
    }

    #[test]
    fn neighbors_interior_and_corner() {
        let g = grid_10x10();
        assert_eq!(g.neighbors(CellId { x: 5, y: 5 }).len(), 8);
        let corner = g.neighbors(CellId { x: 0, y: 0 });
        assert_eq!(corner.len(), 3);
        assert!(corner.contains(&CellId { x: 1, y: 0 }));
        assert!(corner.contains(&CellId { x: 0, y: 1 }));
        assert!(corner.contains(&CellId { x: 1, y: 1 }));
        assert_eq!(g.neighbors(CellId { x: 5, y: 0 }).len(), 5);
    }

    #[test]
    fn cells_intersecting_query() {
        let g = grid_10x10();
        let cells = g.cells_intersecting(&BoundingBox::new(1.5, 1.5, 3.5, 2.5));
        // Columns 1..=3, rows 1..=2 → 3 * 2 cells.
        assert_eq!(cells.len(), 6);
        assert!(cells.contains(&CellId { x: 1, y: 1 }));
        assert!(cells.contains(&CellId { x: 3, y: 2 }));
        // Disjoint query.
        assert!(g
            .cells_intersecting(&BoundingBox::new(20.0, 20.0, 30.0, 30.0))
            .is_empty());
        // Query spilling past the extent is clipped, not an error.
        let clipped = g.cells_intersecting(&BoundingBox::new(8.5, 8.5, 20.0, 20.0));
        assert_eq!(clipped.len(), 4);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for cell in [
            CellId { x: 0, y: 0 },
            CellId { x: 1, y: 2 },
            CellId {
                x: u32::MAX,
                y: 12345,
            },
        ] {
            assert_eq!(CellId::unpack(cell.pack()), cell);
        }
    }
}
