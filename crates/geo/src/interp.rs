//! Interpolation along trajectories.

use crate::point::{GeoPoint, GeoPoint3};
use crate::time::TimeMs;

/// Linear interpolation between scalars, `f` in `[0, 1]`.
pub fn lerp(a: f64, b: f64, f: f64) -> f64 {
    a + (b - a) * f
}

/// Position along the great-circle segment `a → b` at fraction `f ∈ [0, 1]`.
///
/// Uses the destination-point formulation (constant initial bearing over the
/// short legs of a sampled trajectory), which is accurate for the report
/// intervals seen in surveillance data (seconds to minutes).
pub fn point_along(a: &GeoPoint, b: &GeoPoint, f: f64) -> GeoPoint {
    let f = f.clamp(0.0, 1.0);
    if f == 0.0 {
        return *a;
    }
    if f == 1.0 {
        return *b;
    }
    let dist = a.haversine_m(b);
    if dist < 1e-9 {
        return *a;
    }
    a.destination(a.bearing_deg(b), dist * f)
}

/// Interpolated position at time `t` between two timestamped fixes.
///
/// Returns the first fix when the timestamps coincide; clamps `t` to the
/// segment's time range.
pub fn position_at_time(
    (p0, t0): (&GeoPoint, TimeMs),
    (p1, t1): (&GeoPoint, TimeMs),
    t: TimeMs,
) -> GeoPoint {
    let span = t1 - t0;
    if span <= 0 {
        return *p0;
    }
    let f = ((t - t0) as f64 / span as f64).clamp(0.0, 1.0);
    point_along(p0, p1, f)
}

/// Interpolated 3D position at time `t` between two timestamped fixes, with
/// linear altitude blending.
pub fn position3_at_time(
    (p0, t0): (&GeoPoint3, TimeMs),
    (p1, t1): (&GeoPoint3, TimeMs),
    t: TimeMs,
) -> GeoPoint3 {
    let span = t1 - t0;
    if span <= 0 {
        return *p0;
    }
    let f = ((t - t0) as f64 / span as f64).clamp(0.0, 1.0);
    GeoPoint3 {
        horiz: point_along(&p0.horiz, &p1.horiz, f),
        alt_m: lerp(p0.alt_m, p1.alt_m, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_middle() {
        assert_eq!(lerp(0.0, 10.0, 0.0), 0.0);
        assert_eq!(lerp(0.0, 10.0, 1.0), 10.0);
        assert_eq!(lerp(0.0, 10.0, 0.5), 5.0);
        assert_eq!(lerp(-4.0, 4.0, 0.25), -2.0);
    }

    #[test]
    fn point_along_endpoints() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 1.0);
        assert_eq!(point_along(&a, &b, 0.0), a);
        assert_eq!(point_along(&a, &b, 1.0), b);
        // Clamping.
        assert_eq!(point_along(&a, &b, -0.5), a);
        assert_eq!(point_along(&a, &b, 1.5), b);
    }

    #[test]
    fn point_along_midpoint_halves_distance() {
        let a = GeoPoint::new(23.0, 37.0);
        let b = GeoPoint::new(24.0, 38.0);
        let mid = point_along(&a, &b, 0.5);
        let d_total = a.haversine_m(&b);
        assert!((a.haversine_m(&mid) - d_total / 2.0).abs() < 5.0);
    }

    #[test]
    fn point_along_degenerate_segment() {
        let a = GeoPoint::new(5.0, 5.0);
        assert_eq!(point_along(&a, &a, 0.7), a);
    }

    #[test]
    fn position_at_time_linear_in_time() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        let p = position_at_time((&a, TimeMs(0)), (&b, TimeMs(1000)), TimeMs(250));
        assert!((p.lat - 0.25).abs() < 1e-6, "lat = {}", p.lat);
        // Clamp before the segment.
        assert_eq!(
            position_at_time((&a, TimeMs(0)), (&b, TimeMs(1000)), TimeMs(-100)),
            a
        );
        // Clamp after.
        let end = position_at_time((&a, TimeMs(0)), (&b, TimeMs(1000)), TimeMs(5000));
        assert!((end.lat - 1.0).abs() < 1e-9);
    }

    #[test]
    fn position_at_time_zero_span() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 1.0);
        assert_eq!(
            position_at_time((&a, TimeMs(10)), (&b, TimeMs(10)), TimeMs(10)),
            a
        );
    }

    #[test]
    fn position3_blends_altitude() {
        let a = GeoPoint3::new(0.0, 0.0, 0.0);
        let b = GeoPoint3::new(0.0, 1.0, 10_000.0);
        let p = position3_at_time((&a, TimeMs(0)), (&b, TimeMs(1000)), TimeMs(500));
        assert!((p.alt_m - 5000.0).abs() < 1e-9);
        assert!((p.horiz.lat - 0.5).abs() < 1e-6);
    }
}
