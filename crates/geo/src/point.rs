//! Geographic points and spherical-Earth math.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG mean radius R1).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A position on the Earth's surface in degrees of longitude and latitude.
///
/// Longitude is in `[-180, 180]`, latitude in `[-90, 90]`. Constructors do
/// not normalise automatically; use [`GeoPoint::normalized`] when ingesting
/// untrusted data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in degrees east.
    pub lon: f64,
    /// Latitude in degrees north.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a point from longitude and latitude in degrees.
    pub const fn new(lon: f64, lat: f64) -> Self {
        Self { lon, lat }
    }

    /// Returns a copy with longitude wrapped to `[-180, 180]` and latitude
    /// clamped to `[-90, 90]`.
    pub fn normalized(self) -> Self {
        let mut lon = self.lon % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        Self {
            lon,
            lat: self.lat.clamp(-90.0, 90.0),
        }
    }

    /// True when both coordinates are finite and within valid ranges.
    pub fn is_valid(&self) -> bool {
        self.lon.is_finite()
            && self.lat.is_finite()
            && (-180.0..=180.0).contains(&self.lon)
            && (-90.0..=90.0).contains(&self.lat)
    }

    /// Great-circle (haversine) distance to `other`, in metres.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = lat2 - lat1;
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial great-circle bearing towards `other`, in degrees `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlon = (other.lon - self.lon).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let deg = y.atan2(x).to_degrees();
        (deg + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_m` metres along the great
    /// circle with initial `bearing_deg`.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        GeoPoint::new(lon2.to_degrees(), lat2.to_degrees()).normalized()
    }

    /// Cross-track distance in metres from this point to the great-circle
    /// path from `a` to `b`. Positive values lie to the right of the path.
    pub fn cross_track_m(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let d13 = a.haversine_m(self) / EARTH_RADIUS_M;
        let t13 = a.bearing_deg(self).to_radians();
        let t12 = a.bearing_deg(b).to_radians();
        (d13.sin() * (t13 - t12).sin()).asin() * EARTH_RADIUS_M
    }

    /// Distance in metres from this point to the great-circle *segment*
    /// `a`–`b` (not the infinite great circle).
    pub fn segment_distance_m(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let d_ab = a.haversine_m(b);
        if d_ab < 1e-9 {
            return self.haversine_m(a);
        }
        // Along-track distance of the perpendicular foot from `a`.
        let d13 = a.haversine_m(self) / EARTH_RADIUS_M;
        let t13 = a.bearing_deg(self).to_radians();
        let t12 = a.bearing_deg(b).to_radians();
        let xt = (d13.sin() * (t13 - t12).sin()).asin();
        let at = (d13.cos() / xt.cos()).clamp(-1.0, 1.0).acos() * EARTH_RADIUS_M;
        let along = if (t13 - t12).cos() < 0.0 { -at } else { at };
        if along < 0.0 {
            self.haversine_m(a)
        } else if along > d_ab {
            self.haversine_m(b)
        } else {
            (xt * EARTH_RADIUS_M).abs()
        }
    }

    /// Equirectangular local approximation of the squared distance in
    /// metres². Accurate for separations up to a few tens of kilometres and
    /// far cheaper than [`GeoPoint::haversine_m`]; used in hot loops
    /// (R-tree pruning, blocking).
    pub fn fast_dist2_m2(&self, other: &GeoPoint) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos() * EARTH_RADIUS_M;
        let dy = (other.lat - self.lat).to_radians() * EARTH_RADIUS_M;
        dx * dx + dy * dy
    }

    /// Midpoint of the great-circle segment to `other`.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let bx = lat2.cos() * dlon.cos();
        let by = lat2.cos() * dlon.sin();
        let lat3 = (lat1.sin() + lat2.sin()).atan2(((lat1.cos() + bx).powi(2) + by * by).sqrt());
        let lon3 = lon1 + by.atan2(lat1.cos() + bx);
        GeoPoint::new(lon3.to_degrees(), lat3.to_degrees()).normalized()
    }
}

/// A position with altitude, used in the aviation (3D) domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint3 {
    /// Horizontal position.
    pub horiz: GeoPoint,
    /// Altitude above mean sea level, in metres.
    pub alt_m: f64,
}

impl GeoPoint3 {
    /// Creates a 3D point from longitude, latitude (degrees) and altitude
    /// (metres).
    pub const fn new(lon: f64, lat: f64, alt_m: f64) -> Self {
        Self {
            horiz: GeoPoint::new(lon, lat),
            alt_m,
        }
    }

    /// 3D separation in metres: Euclidean combination of the great-circle
    /// horizontal distance and the altitude difference.
    pub fn distance_m(&self, other: &GeoPoint3) -> f64 {
        let h = self.horiz.haversine_m(&other.horiz);
        let v = self.alt_m - other.alt_m;
        (h * h + v * v).sqrt()
    }

    /// Horizontal great-circle distance in metres, ignoring altitude.
    pub fn horizontal_m(&self, other: &GeoPoint3) -> f64 {
        self.horiz.haversine_m(&other.horiz)
    }

    /// Absolute vertical separation in metres.
    pub fn vertical_m(&self, other: &GeoPoint3) -> f64 {
        (self.alt_m - other.alt_m).abs()
    }
}

impl From<GeoPoint> for GeoPoint3 {
    fn from(p: GeoPoint) -> Self {
        GeoPoint3 {
            horiz: p,
            alt_m: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn haversine_known_distance() {
        // Piraeus to Heraklion is roughly 320 km.
        let piraeus = GeoPoint::new(23.647, 37.948);
        let heraklion = GeoPoint::new(25.144, 35.339);
        let d = piraeus.haversine_m(&heraklion);
        assert!((300_000.0..340_000.0).contains(&d), "d = {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(10.0, 50.0);
        assert!(p.haversine_m(&p) < 1e-6);
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(3.0, 42.0);
        let b = GeoPoint::new(-7.5, 55.1);
        assert!(close(a.haversine_m(&b), b.haversine_m(&a), 1e-6));
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new(0.0, 0.0);
        assert!(close(
            origin.bearing_deg(&GeoPoint::new(0.0, 1.0)),
            0.0,
            1e-9
        ));
        assert!(close(
            origin.bearing_deg(&GeoPoint::new(1.0, 0.0)),
            90.0,
            1e-9
        ));
        assert!(close(
            origin.bearing_deg(&GeoPoint::new(0.0, -1.0)),
            180.0,
            1e-9
        ));
        assert!(close(
            origin.bearing_deg(&GeoPoint::new(-1.0, 0.0)),
            270.0,
            1e-9
        ));
    }

    #[test]
    fn destination_round_trip() {
        let start = GeoPoint::new(23.6, 37.9);
        let dest = start.destination(47.0, 12_345.0);
        assert!(close(start.haversine_m(&dest), 12_345.0, 0.5));
        assert!(close(start.bearing_deg(&dest), 47.0, 0.05));
    }

    #[test]
    fn destination_wraps_antimeridian() {
        let start = GeoPoint::new(179.9, 0.0);
        let dest = start.destination(90.0, 50_000.0);
        assert!(dest.is_valid());
        assert!(dest.lon < -179.0, "lon = {}", dest.lon);
    }

    #[test]
    fn normalization_wraps_longitude() {
        let p = GeoPoint::new(190.0, 95.0).normalized();
        assert!(close(p.lon, -170.0, 1e-9));
        assert!(close(p.lat, 90.0, 1e-9));
        let q = GeoPoint::new(-200.0, -95.0).normalized();
        assert!(close(q.lon, 160.0, 1e-9));
        assert!(close(q.lat, -90.0, 1e-9));
    }

    #[test]
    fn validity_checks() {
        assert!(GeoPoint::new(0.0, 0.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
        assert!(!GeoPoint::new(181.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, -91.0).is_valid());
    }

    #[test]
    fn cross_track_sign_and_magnitude() {
        // Path west->east along the equator; a point 1 degree north is
        // ~111 km to the left (negative).
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, 0.0);
        let p = GeoPoint::new(5.0, 1.0);
        let xt = p.cross_track_m(&a, &b);
        assert!(xt < 0.0);
        assert!(close(xt.abs(), 111_195.0, 500.0), "xt = {xt}");
    }

    #[test]
    fn segment_distance_clamps_to_endpoints() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 0.0);
        // Point "behind" a: distance should be to a, not the infinite circle.
        let p = GeoPoint::new(-1.0, 0.5);
        let d = p.segment_distance_m(&a, &b);
        assert!(close(d, p.haversine_m(&a), 1.0));
        // Point "past" b.
        let q = GeoPoint::new(2.0, -0.5);
        let d = q.segment_distance_m(&a, &b);
        assert!(close(d, q.haversine_m(&b), 1.0));
    }

    #[test]
    fn segment_distance_interior() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(2.0, 0.0);
        let p = GeoPoint::new(1.0, 0.5);
        let d = p.segment_distance_m(&a, &b);
        assert!(close(d, 55_597.0, 300.0), "d = {d}");
    }

    #[test]
    fn segment_distance_degenerate_segment() {
        let a = GeoPoint::new(5.0, 5.0);
        let p = GeoPoint::new(5.1, 5.0);
        assert!(close(p.segment_distance_m(&a, &a), p.haversine_m(&a), 1e-6));
    }

    #[test]
    fn fast_dist2_close_to_haversine_at_short_range() {
        let a = GeoPoint::new(23.60, 37.90);
        let b = GeoPoint::new(23.65, 37.93);
        let fast = a.fast_dist2_m2(&b).sqrt();
        let exact = a.haversine_m(&b);
        assert!((fast - exact).abs() / exact < 0.01, "{fast} vs {exact}");
    }

    #[test]
    fn midpoint_lies_between() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, 10.0);
        let m = a.midpoint(&b);
        let d_am = a.haversine_m(&m);
        let d_mb = m.haversine_m(&b);
        assert!(close(d_am, d_mb, 1.0));
        assert!(close(d_am + d_mb, a.haversine_m(&b), 1.0));
    }

    #[test]
    fn point3_distances() {
        let a = GeoPoint3::new(0.0, 0.0, 0.0);
        let b = GeoPoint3::new(0.0, 0.0, 3000.0);
        assert!(close(a.distance_m(&b), 3000.0, 1e-6));
        assert!(close(a.vertical_m(&b), 3000.0, 1e-9));
        assert!(close(a.horizontal_m(&b), 0.0, 1e-9));
        let c = GeoPoint3::new(1.0, 0.0, 0.0);
        let h = a.horizontal_m(&c);
        let d = GeoPoint3::new(1.0, 0.0, 1000.0);
        assert!(a.distance_m(&d) > h);
        assert!(close(a.distance_m(&d), (h * h + 1.0e6).sqrt(), 1e-6));
    }
}
