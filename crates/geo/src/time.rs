//! Millisecond timestamps, intervals and Allen's interval algebra.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A timestamp in milliseconds since the Unix epoch.
///
/// All surveillance data in the workspace is stamped with `TimeMs`; the paper
/// targets "operational latency requirements (i.e. in ms)", so milliseconds
/// are the native resolution throughout.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeMs(pub i64);

impl TimeMs {
    /// The zero timestamp.
    pub const ZERO: TimeMs = TimeMs(0);
    /// The maximum representable timestamp.
    pub const MAX: TimeMs = TimeMs(i64::MAX);
    /// The minimum representable timestamp.
    pub const MIN: TimeMs = TimeMs(i64::MIN);

    /// Constructs a timestamp from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        TimeMs(secs * 1000)
    }

    /// Constructs a timestamp from whole minutes.
    pub const fn from_mins(mins: i64) -> Self {
        TimeMs(mins * 60_000)
    }

    /// Constructs a timestamp from whole hours.
    pub const fn from_hours(hours: i64) -> Self {
        TimeMs(hours * 3_600_000)
    }

    /// The raw millisecond value.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Fractional seconds represented by this timestamp.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition of a millisecond delta.
    pub fn saturating_add(self, delta_ms: i64) -> Self {
        TimeMs(self.0.saturating_add(delta_ms))
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two timestamps.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<i64> for TimeMs {
    type Output = TimeMs;
    fn add(self, rhs: i64) -> TimeMs {
        TimeMs(self.0 + rhs)
    }
}

impl Sub<i64> for TimeMs {
    type Output = TimeMs;
    fn sub(self, rhs: i64) -> TimeMs {
        TimeMs(self.0 - rhs)
    }
}

impl Sub<TimeMs> for TimeMs {
    /// Difference between two timestamps, in milliseconds.
    type Output = i64;
    fn sub(self, rhs: TimeMs) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for TimeMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A half-open time interval `[start, end)` in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Inclusive start.
    pub start: TimeMs,
    /// Exclusive end.
    pub end: TimeMs,
}

impl TimeInterval {
    /// Creates an interval; callers must guarantee `start <= end`.
    pub fn new(start: TimeMs, end: TimeMs) -> Self {
        debug_assert!(start <= end, "interval start after end");
        Self { start, end }
    }

    /// An interval covering a single instant (zero length).
    pub fn instant(t: TimeMs) -> Self {
        Self { start: t, end: t }
    }

    /// Duration in milliseconds.
    pub fn duration_ms(&self) -> i64 {
        self.end - self.start
    }

    /// True when the interval has zero duration.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when the instant `t` falls inside `[start, end)`.
    pub fn contains(&self, t: TimeMs) -> bool {
        t >= self.start && t < self.end
    }

    /// True when the two half-open intervals share at least one instant.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection of two intervals, if non-empty.
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then(|| TimeInterval::new(start, end))
    }

    /// The smallest interval covering both inputs.
    pub fn hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Classifies the relationship of `self` to `other` according to Allen's
    /// interval algebra (using half-open interval semantics, with `meets`
    /// meaning `self.end == other.start`).
    pub fn allen(&self, other: &TimeInterval) -> AllenRelation {
        use AllenRelation::*;
        let (s1, e1, s2, e2) = (self.start, self.end, other.start, other.end);
        if s1 == s2 && e1 == e2 {
            Equals
        } else if e1 < s2 {
            Before
        } else if e2 < s1 {
            After
        } else if e1 == s2 {
            Meets
        } else if e2 == s1 {
            MetBy
        } else if s1 == s2 {
            if e1 < e2 {
                Starts
            } else {
                StartedBy
            }
        } else if e1 == e2 {
            if s1 > s2 {
                Finishes
            } else {
                FinishedBy
            }
        } else if s1 > s2 && e1 < e2 {
            During
        } else if s2 > s1 && e2 < e1 {
            Contains
        } else if s1 < s2 {
            Overlaps
        } else {
            OverlappedBy
        }
    }
}

/// The thirteen Allen interval relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllenRelation {
    /// `self` ends before `other` starts.
    Before,
    /// `self` starts after `other` ends.
    After,
    /// `self` ends exactly where `other` starts.
    Meets,
    /// `self` starts exactly where `other` ends.
    MetBy,
    /// Proper overlap with `self` starting first.
    Overlaps,
    /// Proper overlap with `other` starting first.
    OverlappedBy,
    /// Same start, `self` ends first.
    Starts,
    /// Same start, `self` ends last.
    StartedBy,
    /// `self` strictly inside `other`.
    During,
    /// `other` strictly inside `self`.
    Contains,
    /// Same end, `self` starts last.
    Finishes,
    /// Same end, `self` starts first.
    FinishedBy,
    /// Identical intervals.
    Equals,
}

impl AllenRelation {
    /// The inverse relation (the relation of `other` to `self`).
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            After => Before,
            Meets => MetBy,
            MetBy => Meets,
            Overlaps => OverlappedBy,
            OverlappedBy => Overlaps,
            Starts => StartedBy,
            StartedBy => Starts,
            During => Contains,
            Contains => During,
            Finishes => FinishedBy,
            FinishedBy => Finishes,
            Equals => Equals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(TimeMs(a), TimeMs(b))
    }

    #[test]
    fn time_arithmetic() {
        let t = TimeMs::from_secs(3);
        assert_eq!(t.millis(), 3000);
        assert_eq!((t + 500).millis(), 3500);
        assert_eq!((t - 500).millis(), 2500);
        assert_eq!(TimeMs(5000) - TimeMs(2000), 3000);
        assert_eq!(TimeMs::from_mins(2).millis(), 120_000);
        assert_eq!(TimeMs::from_hours(1).millis(), 3_600_000);
        assert_eq!(TimeMs::MAX.saturating_add(1), TimeMs::MAX);
    }

    #[test]
    fn interval_contains_half_open() {
        let i = iv(10, 20);
        assert!(!i.contains(TimeMs(9)));
        assert!(i.contains(TimeMs(10)));
        assert!(i.contains(TimeMs(19)));
        assert!(!i.contains(TimeMs(20)));
        assert_eq!(i.duration_ms(), 10);
    }

    #[test]
    fn interval_overlap_and_intersection() {
        assert!(iv(0, 10).overlaps(&iv(5, 15)));
        assert!(!iv(0, 10).overlaps(&iv(10, 20)), "touching is not overlap");
        assert_eq!(iv(0, 10).intersection(&iv(5, 15)), Some(iv(5, 10)));
        assert_eq!(iv(0, 10).intersection(&iv(10, 20)), None);
        assert_eq!(iv(0, 10).hull(&iv(20, 30)), iv(0, 30));
    }

    #[test]
    fn allen_all_thirteen() {
        use AllenRelation::*;
        assert_eq!(iv(0, 5).allen(&iv(6, 10)), Before);
        assert_eq!(iv(6, 10).allen(&iv(0, 5)), After);
        assert_eq!(iv(0, 5).allen(&iv(5, 10)), Meets);
        assert_eq!(iv(5, 10).allen(&iv(0, 5)), MetBy);
        assert_eq!(iv(0, 6).allen(&iv(4, 10)), Overlaps);
        assert_eq!(iv(4, 10).allen(&iv(0, 6)), OverlappedBy);
        assert_eq!(iv(0, 5).allen(&iv(0, 10)), Starts);
        assert_eq!(iv(0, 10).allen(&iv(0, 5)), StartedBy);
        assert_eq!(iv(3, 7).allen(&iv(0, 10)), During);
        assert_eq!(iv(0, 10).allen(&iv(3, 7)), Contains);
        assert_eq!(iv(5, 10).allen(&iv(0, 10)), Finishes);
        assert_eq!(iv(0, 10).allen(&iv(5, 10)), FinishedBy);
        assert_eq!(iv(0, 10).allen(&iv(0, 10)), Equals);
    }

    #[test]
    fn allen_inverse_is_involution() {
        use AllenRelation::*;
        for r in [
            Before,
            After,
            Meets,
            MetBy,
            Overlaps,
            OverlappedBy,
            Starts,
            StartedBy,
            During,
            Contains,
            Finishes,
            FinishedBy,
            Equals,
        ] {
            assert_eq!(r.inverse().inverse(), r);
        }
    }

    #[test]
    fn allen_matches_inverse_of_swapped_args() {
        let pairs = [
            (iv(0, 5), iv(6, 10)),
            (iv(0, 6), iv(4, 10)),
            (iv(0, 5), iv(0, 10)),
            (iv(3, 7), iv(0, 10)),
            (iv(5, 10), iv(0, 10)),
            (iv(0, 10), iv(0, 10)),
            (iv(0, 5), iv(5, 10)),
        ];
        for (a, b) in pairs {
            assert_eq!(a.allen(&b).inverse(), b.allen(&a), "{a:?} vs {b:?}");
        }
    }
}
