//! Unit conversions used across the maritime and aviation domains.

/// Metres per nautical mile.
pub const METERS_PER_NM: f64 = 1852.0;

/// Metres per foot.
pub const METERS_PER_FT: f64 = 0.3048;

/// Converts speed in knots to metres per second.
pub fn knots_to_mps(knots: f64) -> f64 {
    knots * METERS_PER_NM / 3600.0
}

/// Converts speed in metres per second to knots.
pub fn mps_to_knots(mps: f64) -> f64 {
    mps * 3600.0 / METERS_PER_NM
}

/// Converts nautical miles to metres.
pub fn nm_to_m(nm: f64) -> f64 {
    nm * METERS_PER_NM
}

/// Converts metres to nautical miles.
pub fn m_to_nm(m: f64) -> f64 {
    m / METERS_PER_NM
}

/// Converts feet to metres (aviation altitudes).
pub fn ft_to_m(ft: f64) -> f64 {
    ft * METERS_PER_FT
}

/// Converts metres to feet.
pub fn m_to_ft(m: f64) -> f64 {
    m / METERS_PER_FT
}

/// Converts a flight level (hundreds of feet) to metres.
pub fn fl_to_m(fl: f64) -> f64 {
    ft_to_m(fl * 100.0)
}

/// Normalises an angle in degrees to `[0, 360)`.
pub fn normalize_deg(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// The smallest signed difference `a - b` between two headings, in
/// `(-180, 180]` degrees. Positive means `a` lies clockwise of `b`.
pub fn heading_delta_deg(a: f64, b: f64) -> f64 {
    let mut d = normalize_deg(a) - normalize_deg(b);
    if d > 180.0 {
        d -= 360.0;
    } else if d <= -180.0 {
        d += 360.0;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn speed_round_trip() {
        assert!(close(mps_to_knots(knots_to_mps(12.5)), 12.5));
        assert!((knots_to_mps(1.0) - 0.514444).abs() < 1e-5);
    }

    #[test]
    fn distance_round_trip() {
        assert!(close(m_to_nm(nm_to_m(3.0)), 3.0));
        assert!(close(nm_to_m(1.0), 1852.0));
    }

    #[test]
    fn altitude_conversions() {
        assert!(close(ft_to_m(1000.0), 304.8));
        assert!(close(m_to_ft(ft_to_m(35_000.0)), 35_000.0));
        assert!(close(fl_to_m(350.0), ft_to_m(35_000.0)));
    }

    #[test]
    fn normalize_degrees() {
        assert!(close(normalize_deg(370.0), 10.0));
        assert!(close(normalize_deg(-10.0), 350.0));
        assert!(close(normalize_deg(720.0), 0.0));
        assert!(close(normalize_deg(0.0), 0.0));
    }

    #[test]
    fn heading_delta_shortest_arc() {
        assert!(close(heading_delta_deg(10.0, 350.0), 20.0));
        assert!(close(heading_delta_deg(350.0, 10.0), -20.0));
        assert!(close(heading_delta_deg(90.0, 270.0), 180.0));
        assert!(close(heading_delta_deg(0.0, 0.0), 0.0));
        assert!(close(heading_delta_deg(45.0, 45.0), 0.0));
    }

    #[test]
    fn heading_delta_bounds() {
        for a in (0..360).step_by(17) {
            for b in (0..360).step_by(13) {
                let d = heading_delta_deg(a as f64, b as f64);
                assert!(d > -180.0 - 1e-9 && d <= 180.0 + 1e-9, "{a} {b} -> {d}");
            }
        }
    }
}
