//! Spatiotemporal geometry substrate for the datAcron reproduction.
//!
//! Every other crate in the workspace builds on the primitives defined here:
//!
//! * [`GeoPoint`] / [`GeoPoint3`] — positions on a spherical Earth, with
//!   great-circle distance, bearing and destination-point math.
//! * [`BoundingBox`] / [`SpaceTimeBox`] — axis-aligned spatial and
//!   spatiotemporal envelopes.
//! * [`Polygon`] — simple polygons with point-in-polygon tests (used for
//!   zones of interest: ports, sectors, protected areas).
//! * [`Grid`] / [`CellId`] — equi-angular space tiling used for blocking in
//!   link discovery, spatial RDF partitioning, Markov-grid forecasting and
//!   heatmap aggregation.
//! * [`RTree`] — an STR bulk-loaded R-tree for spatial range and
//!   nearest-neighbour queries.
//! * [`TimeMs`] / [`TimeInterval`] — millisecond timestamps and intervals
//!   with the Allen interval relations.
//!
//! The Earth model is a sphere of radius [`EARTH_RADIUS_M`]; at the accuracy
//! relevant to surveillance analytics (tens of metres) the difference from an
//! ellipsoid is immaterial and the math stays transparent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bbox;
pub mod grid;
pub mod interp;
pub mod point;
pub mod polygon;
pub mod rtree;
pub mod time;
pub mod units;

pub use bbox::{BoundingBox, SpaceTimeBox};
pub use grid::{CellId, Grid};
pub use interp::{lerp, point_along, position3_at_time, position_at_time};
pub use point::{GeoPoint, GeoPoint3, EARTH_RADIUS_M};
pub use polygon::Polygon;
pub use rtree::{RTree, RTreeEntry};
pub use time::{AllenRelation, TimeInterval, TimeMs};
