//! Axis-aligned spatial and spatiotemporal envelopes.

use crate::point::GeoPoint;
use crate::time::TimeInterval;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in lon/lat degrees.
///
/// Boxes never wrap the antimeridian; the synthetic worlds used in this
/// reproduction (Aegean, western Europe) stay far from it, and callers that
/// do need wrap-around can split into two boxes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum longitude (west edge).
    pub min_lon: f64,
    /// Minimum latitude (south edge).
    pub min_lat: f64,
    /// Maximum longitude (east edge).
    pub max_lon: f64,
    /// Maximum latitude (north edge).
    pub max_lat: f64,
}

impl BoundingBox {
    /// A degenerate "empty" box that expands to fit the first point added.
    pub const EMPTY: BoundingBox = BoundingBox {
        min_lon: f64::INFINITY,
        min_lat: f64::INFINITY,
        max_lon: f64::NEG_INFINITY,
        max_lat: f64::NEG_INFINITY,
    };

    /// Creates a box from corner coordinates; callers must keep min <= max.
    pub fn new(min_lon: f64, min_lat: f64, max_lon: f64, max_lat: f64) -> Self {
        debug_assert!(min_lon <= max_lon && min_lat <= max_lat, "inverted bbox");
        Self {
            min_lon,
            min_lat,
            max_lon,
            max_lat,
        }
    }

    /// The zero-area box at a single point.
    pub fn from_point(p: GeoPoint) -> Self {
        Self::new(p.lon, p.lat, p.lon, p.lat)
    }

    /// The tightest box around an iterator of points; `None` when empty.
    pub fn from_points<I: IntoIterator<Item = GeoPoint>>(points: I) -> Option<Self> {
        let mut bbox = Self::EMPTY;
        let mut any = false;
        for p in points {
            bbox.expand_point(p);
            any = true;
        }
        any.then_some(bbox)
    }

    /// True when no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min_lon > self.max_lon
    }

    /// Grows the box to cover `p`.
    pub fn expand_point(&mut self, p: GeoPoint) {
        self.min_lon = self.min_lon.min(p.lon);
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lon = self.max_lon.max(p.lon);
        self.max_lat = self.max_lat.max(p.lat);
    }

    /// Grows the box to cover `other`.
    pub fn expand_bbox(&mut self, other: &BoundingBox) {
        self.min_lon = self.min_lon.min(other.min_lon);
        self.min_lat = self.min_lat.min(other.min_lat);
        self.max_lon = self.max_lon.max(other.max_lon);
        self.max_lat = self.max_lat.max(other.max_lat);
    }

    /// Returns a copy enlarged by `margin_deg` degrees on every side.
    pub fn buffered(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min_lon: self.min_lon - margin_deg,
            min_lat: self.min_lat - margin_deg,
            max_lon: self.max_lon + margin_deg,
            max_lat: self.max_lat + margin_deg,
        }
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// True when the two boxes share any point (boundaries included).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
            && self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_bbox(&self, other: &BoundingBox) -> bool {
        other.min_lon >= self.min_lon
            && other.max_lon <= self.max_lon
            && other.min_lat >= self.min_lat
            && other.max_lat <= self.max_lat
    }

    /// The centre point of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lon + self.max_lon) / 2.0,
            (self.min_lat + self.max_lat) / 2.0,
        )
    }

    /// Width in degrees of longitude.
    pub fn width_deg(&self) -> f64 {
        (self.max_lon - self.min_lon).max(0.0)
    }

    /// Height in degrees of latitude.
    pub fn height_deg(&self) -> f64 {
        (self.max_lat - self.min_lat).max(0.0)
    }

    /// Area in square degrees — a cheap proxy used by R-tree packing
    /// heuristics, not a physical area.
    pub fn area_deg2(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width_deg() * self.height_deg()
        }
    }

    /// Minimum distance in metres from `p` to the box (0 when inside),
    /// computed with the equirectangular approximation.
    pub fn min_distance_m(&self, p: &GeoPoint) -> f64 {
        let clamped = GeoPoint::new(
            p.lon.clamp(self.min_lon, self.max_lon),
            p.lat.clamp(self.min_lat, self.max_lat),
        );
        p.fast_dist2_m2(&clamped).sqrt()
    }
}

/// A spatiotemporal envelope: a bounding box plus a time interval.
///
/// Used by the RDF store's spatiotemporal filters and by the space-time
/// blocking scheme in link discovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceTimeBox {
    /// Spatial extent.
    pub space: BoundingBox,
    /// Temporal extent.
    pub time: TimeInterval,
}

impl SpaceTimeBox {
    /// Creates a space-time envelope.
    pub fn new(space: BoundingBox, time: TimeInterval) -> Self {
        Self { space, time }
    }

    /// True when the point `(p, t)` falls inside the envelope.
    pub fn contains(&self, p: &GeoPoint, t: crate::time::TimeMs) -> bool {
        self.space.contains(p) && self.time.contains(t)
    }

    /// True when the two envelopes intersect in both space and time.
    pub fn intersects(&self, other: &SpaceTimeBox) -> bool {
        self.space.intersects(&other.space) && self.time.overlaps(&other.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeMs;

    #[test]
    fn from_points_and_contains() {
        let pts = vec![
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(-1.0, 5.0),
            GeoPoint::new(3.0, 0.0),
        ];
        let b = BoundingBox::from_points(pts).unwrap();
        assert_eq!(b, BoundingBox::new(-1.0, 0.0, 3.0, 5.0));
        assert!(b.contains(&GeoPoint::new(0.0, 3.0)));
        assert!(b.contains(&GeoPoint::new(-1.0, 0.0)), "boundary included");
        assert!(!b.contains(&GeoPoint::new(3.1, 3.0)));
    }

    #[test]
    fn from_points_empty() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
        assert!(BoundingBox::EMPTY.is_empty());
        assert_eq!(BoundingBox::EMPTY.area_deg2(), 0.0);
    }

    #[test]
    fn intersects_cases() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(a.intersects(&BoundingBox::new(5.0, 5.0, 15.0, 15.0)));
        assert!(
            a.intersects(&BoundingBox::new(10.0, 10.0, 20.0, 20.0)),
            "touching corners intersect"
        );
        assert!(!a.intersects(&BoundingBox::new(10.01, 0.0, 20.0, 10.0)));
        assert!(
            a.intersects(&BoundingBox::new(2.0, 2.0, 3.0, 3.0)),
            "containment is intersection"
        );
    }

    #[test]
    fn contains_bbox_and_expand() {
        let mut a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let inner = BoundingBox::new(1.0, 1.0, 9.0, 9.0);
        assert!(a.contains_bbox(&inner));
        assert!(!inner.contains_bbox(&a));
        a.expand_bbox(&BoundingBox::new(-5.0, 2.0, 1.0, 12.0));
        assert_eq!(a, BoundingBox::new(-5.0, 0.0, 10.0, 12.0));
    }

    #[test]
    fn center_width_height_buffer() {
        let b = BoundingBox::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(b.center(), GeoPoint::new(2.0, 1.0));
        assert_eq!(b.width_deg(), 4.0);
        assert_eq!(b.height_deg(), 2.0);
        assert_eq!(b.area_deg2(), 8.0);
        let buf = b.buffered(1.0);
        assert_eq!(buf, BoundingBox::new(-1.0, -1.0, 5.0, 3.0));
    }

    #[test]
    fn min_distance_zero_inside() {
        let b = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(b.min_distance_m(&GeoPoint::new(0.5, 0.5)), 0.0);
        let d = b.min_distance_m(&GeoPoint::new(2.0, 0.5));
        // 1 degree of longitude at the equator-ish is ~111 km.
        assert!((d - 111_000.0).abs() < 2_000.0, "d = {d}");
    }

    #[test]
    fn space_time_box() {
        let stb = SpaceTimeBox::new(
            BoundingBox::new(0.0, 0.0, 1.0, 1.0),
            TimeInterval::new(TimeMs(0), TimeMs(100)),
        );
        assert!(stb.contains(&GeoPoint::new(0.5, 0.5), TimeMs(50)));
        assert!(!stb.contains(&GeoPoint::new(0.5, 0.5), TimeMs(100)));
        assert!(!stb.contains(&GeoPoint::new(2.0, 0.5), TimeMs(50)));
        let other = SpaceTimeBox::new(
            BoundingBox::new(0.5, 0.5, 2.0, 2.0),
            TimeInterval::new(TimeMs(50), TimeMs(150)),
        );
        assert!(stb.intersects(&other));
        let disjoint_time = SpaceTimeBox::new(
            BoundingBox::new(0.5, 0.5, 2.0, 2.0),
            TimeInterval::new(TimeMs(100), TimeMs(150)),
        );
        assert!(!stb.intersects(&disjoint_time));
    }
}
