//! A static R-tree bulk-loaded with the Sort-Tile-Recursive (STR) algorithm.
//!
//! Surveillance analytics mostly builds spatial indexes in batch (per window,
//! per partition, per loaded dataset), so a packed static tree is both
//! simpler and faster than a dynamic R*-tree. Supports rectangle range
//! queries and k-nearest-neighbour search with best-first traversal.

use crate::bbox::BoundingBox;
use crate::point::GeoPoint;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Branching factor: maximum number of children per internal node and
/// entries per leaf. 16 keeps the tree shallow while staying cache-friendly.
const NODE_CAPACITY: usize = 16;

/// An indexed item: a bounding box plus a caller payload.
#[derive(Debug, Clone)]
pub struct RTreeEntry<T> {
    /// Spatial key.
    pub bbox: BoundingBox,
    /// Caller payload (id, record, …).
    pub item: T,
}

impl<T> RTreeEntry<T> {
    /// Convenience constructor for point data.
    pub fn point(p: GeoPoint, item: T) -> Self {
        Self {
            bbox: BoundingBox::from_point(p),
            item,
        }
    }
}

#[derive(Debug)]
enum Node {
    Leaf {
        bbox: BoundingBox,
        /// Indexes into `RTree::entries`.
        entries: Vec<u32>,
    },
    Internal {
        bbox: BoundingBox,
        children: Vec<u32>,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Internal { bbox, .. } => bbox,
        }
    }
}

/// A static, STR-packed R-tree.
#[derive(Debug)]
pub struct RTree<T> {
    entries: Vec<RTreeEntry<T>>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::bulk_load(Vec::new())
    }
}

impl<T> RTree<T> {
    /// Builds the tree from a batch of entries in O(n log n).
    pub fn bulk_load(entries: Vec<RTreeEntry<T>>) -> Self {
        let mut tree = RTree {
            entries,
            nodes: Vec::new(),
            root: None,
        };
        if tree.entries.is_empty() {
            return tree;
        }

        // STR: sort by x-centre, slice into vertical strips, sort each strip
        // by y-centre, pack runs of NODE_CAPACITY into leaves.
        let mut order: Vec<u32> = (0..tree.entries.len() as u32).collect();
        let centers: Vec<(f64, f64)> = tree
            .entries
            .iter()
            .map(|e| {
                let c = e.bbox.center();
                (c.lon, c.lat)
            })
            .collect();
        order.sort_by(|&a, &b| centers[a as usize].0.total_cmp(&centers[b as usize].0));

        let n = order.len();
        let leaf_count = n.div_ceil(NODE_CAPACITY);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let strip_size = n.div_ceil(strip_count);

        let mut leaves: Vec<u32> = Vec::with_capacity(leaf_count);
        for strip in order.chunks_mut(strip_size.max(1)) {
            strip.sort_by(|&a, &b| centers[a as usize].1.total_cmp(&centers[b as usize].1));
            for run in strip.chunks(NODE_CAPACITY) {
                let mut bbox = BoundingBox::EMPTY;
                for &idx in run {
                    bbox.expand_bbox(&tree.entries[idx as usize].bbox);
                }
                tree.nodes.push(Node::Leaf {
                    bbox,
                    entries: run.to_vec(),
                });
                leaves.push(tree.nodes.len() as u32 - 1);
            }
        }

        // Pack levels upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            for run in level.chunks(NODE_CAPACITY) {
                let mut bbox = BoundingBox::EMPTY;
                for &child in run {
                    bbox.expand_bbox(tree.nodes[child as usize].bbox());
                }
                tree.nodes.push(Node::Internal {
                    bbox,
                    children: run.to_vec(),
                });
                next.push(tree.nodes.len() as u32 - 1);
            }
            level = next;
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bounding box of all entries, when non-empty.
    pub fn bbox(&self) -> Option<&BoundingBox> {
        self.root.map(|r| self.nodes[r as usize].bbox())
    }

    /// All entries whose boxes intersect `query`.
    pub fn query<'a>(&'a self, query: &BoundingBox) -> Vec<&'a RTreeEntry<T>> {
        let mut out = Vec::new();
        self.for_each_in(query, |e| out.push(e));
        out
    }

    /// Visits every entry intersecting `query` without allocating results.
    pub fn for_each_in<'a>(
        &'a self,
        query: &BoundingBox,
        mut visit: impl FnMut(&'a RTreeEntry<T>),
    ) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(node_idx) = stack.pop() {
            match &self.nodes[node_idx as usize] {
                Node::Leaf { bbox, entries } => {
                    if bbox.intersects(query) {
                        for &e in entries {
                            let entry = &self.entries[e as usize];
                            if entry.bbox.intersects(query) {
                                visit(entry);
                            }
                        }
                    }
                }
                Node::Internal { bbox, children } => {
                    if bbox.intersects(query) {
                        stack.extend_from_slice(children);
                    }
                }
            }
        }
    }

    /// The `k` entries nearest to `p` (by minimum box distance), closest
    /// first. Best-first search with a min-heap over node/entry distances.
    pub fn nearest<'a>(&'a self, p: &GeoPoint, k: usize) -> Vec<(&'a RTreeEntry<T>, f64)> {
        #[derive(PartialEq)]
        enum Cand {
            Node(u32),
            Entry(u32),
        }
        struct HeapItem {
            dist: f64,
            cand: Cand,
        }
        impl PartialEq for HeapItem {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for HeapItem {}
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapItem {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap on distance.
                other.dist.total_cmp(&self.dist)
            }
        }

        let mut out = Vec::with_capacity(k.min(self.len()));
        let Some(root) = self.root else { return out };
        if k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.nodes[root as usize].bbox().min_distance_m(p),
            cand: Cand::Node(root),
        });
        while let Some(HeapItem { dist, cand }) = heap.pop() {
            match cand {
                Cand::Entry(e) => {
                    out.push((&self.entries[e as usize], dist));
                    if out.len() == k {
                        break;
                    }
                }
                Cand::Node(n) => match &self.nodes[n as usize] {
                    Node::Leaf { entries, .. } => {
                        for &e in entries {
                            heap.push(HeapItem {
                                dist: self.entries[e as usize].bbox.min_distance_m(p),
                                cand: Cand::Entry(e),
                            });
                        }
                    }
                    Node::Internal { children, .. } => {
                        for &c in children {
                            heap.push(HeapItem {
                                dist: self.nodes[c as usize].bbox().min_distance_m(p),
                                cand: Cand::Node(c),
                            });
                        }
                    }
                },
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n_side: usize) -> Vec<RTreeEntry<usize>> {
        let mut entries = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                entries.push(RTreeEntry::point(
                    GeoPoint::new(i as f64 * 0.1, j as f64 * 0.1),
                    i * n_side + j,
                ));
            }
        }
        entries
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert!(tree.bbox().is_none());
        assert!(tree.query(&BoundingBox::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(tree.nearest(&GeoPoint::new(0.0, 0.0), 5).is_empty());
    }

    #[test]
    fn single_entry() {
        let tree = RTree::bulk_load(vec![RTreeEntry::point(GeoPoint::new(1.0, 2.0), "a")]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query(&BoundingBox::new(0.0, 0.0, 3.0, 3.0)).len(), 1);
        assert!(tree.query(&BoundingBox::new(5.0, 5.0, 6.0, 6.0)).is_empty());
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let entries = grid_points(20);
        let reference: Vec<(BoundingBox, usize)> =
            entries.iter().map(|e| (e.bbox, e.item)).collect();
        let tree = RTree::bulk_load(entries);
        let queries = [
            BoundingBox::new(0.05, 0.05, 0.55, 0.55),
            BoundingBox::new(0.0, 0.0, 2.0, 2.0),
            BoundingBox::new(1.95, 1.95, 3.0, 3.0),
            BoundingBox::new(-1.0, -1.0, -0.5, -0.5),
            BoundingBox::new(0.1, 0.1, 0.1, 0.1),
        ];
        for q in queries {
            let mut got: Vec<usize> = tree.query(&q).iter().map(|e| e.item).collect();
            let mut want: Vec<usize> = reference
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|&(_, i)| i)
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let entries = grid_points(15);
        let pts: Vec<(GeoPoint, usize)> =
            entries.iter().map(|e| (e.bbox.center(), e.item)).collect();
        let tree = RTree::bulk_load(entries);
        for probe in [
            GeoPoint::new(0.73, 0.41),
            GeoPoint::new(-0.5, -0.5),
            GeoPoint::new(3.0, 3.0),
        ] {
            let got: Vec<usize> = tree
                .nearest(&probe, 5)
                .iter()
                .map(|(e, _)| e.item)
                .collect();
            let mut want: Vec<(f64, usize)> = pts
                .iter()
                .map(|&(p, i)| (probe.fast_dist2_m2(&p).sqrt(), i))
                .collect();
            want.sort_by(|a, b| a.0.total_cmp(&b.0));
            let want: Vec<usize> = want.into_iter().take(5).map(|(_, i)| i).collect();
            assert_eq!(got, want, "probe {probe:?}");
        }
    }

    #[test]
    fn nearest_distances_monotone() {
        let tree = RTree::bulk_load(grid_points(10));
        let result = tree.nearest(&GeoPoint::new(0.42, 0.42), 10);
        assert_eq!(result.len(), 10);
        for pair in result.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn nearest_k_larger_than_len() {
        let tree = RTree::bulk_load(grid_points(2));
        assert_eq!(tree.nearest(&GeoPoint::new(0.0, 0.0), 100).len(), 4);
    }

    #[test]
    fn bbox_covers_everything() {
        let tree = RTree::bulk_load(grid_points(20));
        let bbox = tree.bbox().unwrap();
        assert!(bbox.contains(&GeoPoint::new(0.0, 0.0)));
        assert!(bbox.contains(&GeoPoint::new(1.9, 1.9)));
    }

    #[test]
    fn for_each_visits_all() {
        let tree = RTree::bulk_load(grid_points(8));
        let mut count = 0;
        tree.for_each_in(&BoundingBox::new(-1.0, -1.0, 10.0, 10.0), |_| count += 1);
        assert_eq!(count, 64);
    }
}
