//! Simple polygons for zones of interest (ports, fishing areas, sectors).

use crate::bbox::BoundingBox;
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// A simple (non-self-intersecting) polygon in lon/lat degrees.
///
/// The ring is stored open (first vertex not repeated); closure is implicit.
/// Point-in-polygon uses even-odd ray casting in coordinate space, which is
/// accurate for the regional zones used in maritime/aviation surveillance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    ring: Vec<GeoPoint>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Builds a polygon from at least three vertices.
    ///
    /// Returns `None` for fewer than three vertices or any invalid vertex.
    pub fn new(mut ring: Vec<GeoPoint>) -> Option<Self> {
        // Drop an explicitly repeated closing vertex.
        if ring.len() >= 2 {
            let (first, last) = (ring[0], *ring.last().unwrap());
            if first == last {
                ring.pop();
            }
        }
        if ring.len() < 3 || ring.iter().any(|p| !p.is_valid()) {
            return None;
        }
        let bbox = BoundingBox::from_points(ring.iter().copied())?;
        Some(Self { ring, bbox })
    }

    /// An axis-aligned rectangle as a polygon.
    pub fn rectangle(b: &BoundingBox) -> Self {
        Polygon::new(vec![
            GeoPoint::new(b.min_lon, b.min_lat),
            GeoPoint::new(b.max_lon, b.min_lat),
            GeoPoint::new(b.max_lon, b.max_lat),
            GeoPoint::new(b.min_lon, b.max_lat),
        ])
        .expect("rectangle is a valid polygon")
    }

    /// A regular polygon approximating a circle of `radius_m` metres around
    /// `center`, with `segments` vertices (min 3).
    pub fn circle(center: GeoPoint, radius_m: f64, segments: usize) -> Self {
        let n = segments.max(3);
        let ring = (0..n)
            .map(|i| center.destination(360.0 * i as f64 / n as f64, radius_m))
            .collect();
        Polygon::new(ring).expect("circle is a valid polygon")
    }

    /// The polygon's vertices (open ring).
    pub fn ring(&self) -> &[GeoPoint] {
        &self.ring
    }

    /// The precomputed bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Even-odd point-in-polygon test. Points exactly on an edge may land on
    /// either side; zones are defined with margins so this is acceptable.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let (a, b) = (&self.ring[i], &self.ring[j]);
            let crosses = (a.lat > p.lat) != (b.lat > p.lat);
            if crosses {
                let x_at = a.lon + (p.lat - a.lat) / (b.lat - a.lat) * (b.lon - a.lon);
                if p.lon < x_at {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Signed area in square degrees via the shoelace formula. Positive for
    /// counter-clockwise rings.
    pub fn signed_area_deg2(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = &self.ring[i];
            let b = &self.ring[(i + 1) % n];
            acc += a.lon * b.lat - b.lon * a.lat;
        }
        acc / 2.0
    }

    /// Centroid of the vertex set (adequate for labelling zones).
    pub fn vertex_centroid(&self) -> GeoPoint {
        let n = self.ring.len() as f64;
        let (sx, sy) = self
            .ring
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.lon, sy + p.lat));
        GeoPoint::new(sx / n, sy / n)
    }

    /// Minimum distance in metres from `p` to the polygon boundary, or 0.0
    /// when `p` is inside.
    pub fn distance_m(&self, p: &GeoPoint) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        let n = self.ring.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            let a = &self.ring[i];
            let b = &self.ring[(i + 1) % n];
            best = best.min(p.segment_distance_m(a, b));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(&BoundingBox::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn rejects_degenerate_rings() {
        assert!(Polygon::new(vec![]).is_none());
        assert!(Polygon::new(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)]).is_none());
        assert!(Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(f64::NAN, 0.0),
        ])
        .is_none());
    }

    #[test]
    fn strips_closing_vertex() {
        let p = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 0.0),
            GeoPoint::new(0.0, 1.0),
            GeoPoint::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.ring().len(), 3);
    }

    #[test]
    fn square_containment() {
        let sq = unit_square();
        assert!(sq.contains(&GeoPoint::new(0.5, 0.5)));
        assert!(!sq.contains(&GeoPoint::new(1.5, 0.5)));
        assert!(!sq.contains(&GeoPoint::new(0.5, -0.1)));
        assert!(!sq.contains(&GeoPoint::new(-0.5, 0.5)));
    }

    #[test]
    fn concave_polygon_containment() {
        // A "C" shape: the notch on the right side must be outside.
        let c = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(3.0, 0.0),
            GeoPoint::new(3.0, 1.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(3.0, 2.0),
            GeoPoint::new(3.0, 3.0),
            GeoPoint::new(0.0, 3.0),
        ])
        .unwrap();
        assert!(c.contains(&GeoPoint::new(0.5, 1.5)), "spine of the C");
        assert!(!c.contains(&GeoPoint::new(2.0, 1.5)), "notch of the C");
        assert!(c.contains(&GeoPoint::new(2.0, 0.5)), "lower arm");
        assert!(c.contains(&GeoPoint::new(2.0, 2.5)), "upper arm");
    }

    #[test]
    fn circle_roughly_round() {
        let center = GeoPoint::new(24.0, 37.0);
        let circle = Polygon::circle(center, 10_000.0, 32);
        assert!(circle.contains(&center));
        assert!(circle.contains(&center.destination(123.0, 9_000.0)));
        assert!(!circle.contains(&center.destination(123.0, 11_000.0)));
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 0.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(0.0, 1.0),
        ])
        .unwrap();
        assert!((ccw.signed_area_deg2() - 1.0).abs() < 1e-12);
        let cw = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(0.0, 1.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(1.0, 0.0),
        ])
        .unwrap();
        assert!((cw.signed_area_deg2() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_zero_inside_positive_outside() {
        let sq = unit_square();
        assert_eq!(sq.distance_m(&GeoPoint::new(0.5, 0.5)), 0.0);
        let d = sq.distance_m(&GeoPoint::new(2.0, 0.5));
        assert!((d - 111_000.0).abs() < 2_000.0, "d = {d}");
    }

    #[test]
    fn vertex_centroid_of_square() {
        let c = unit_square().vertex_centroid();
        assert!((c.lon - 0.5).abs() < 1e-12 && (c.lat - 0.5).abs() < 1e-12);
    }
}
