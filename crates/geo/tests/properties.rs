//! Property-based tests for the geometry substrate.

use datacron_geo::{
    point_along, BoundingBox, CellId, GeoPoint, Grid, Polygon, RTree, RTreeEntry, TimeInterval,
    TimeMs,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-179.0f64..179.0, -85.0f64..85.0).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

fn arb_regional_point() -> impl Strategy<Value = GeoPoint> {
    // A region the size of the Aegean, away from poles/antimeridian.
    (20.0f64..28.0, 34.0f64..41.0).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

proptest! {
    #[test]
    fn haversine_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.haversine_m(&b);
        let bc = b.haversine_m(&c);
        let ac = a.haversine_m(&c);
        // Allow a small absolute slack for floating error on near-degenerate triangles.
        prop_assert!(ac <= ab + bc + 1e-4);
    }

    #[test]
    fn haversine_nonnegative_symmetric(a in arb_point(), b in arb_point()) {
        let d1 = a.haversine_m(&b);
        let d2 = b.haversine_m(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn destination_distance_consistent(
        p in arb_regional_point(),
        bearing in 0.0f64..360.0,
        dist in 1.0f64..200_000.0,
    ) {
        let q = p.destination(bearing, dist);
        prop_assert!((p.haversine_m(&q) - dist).abs() < dist * 1e-6 + 0.01);
    }

    #[test]
    fn point_along_stays_on_segment(
        a in arb_regional_point(),
        b in arb_regional_point(),
        f in 0.0f64..1.0,
    ) {
        let m = point_along(&a, &b, f);
        let total = a.haversine_m(&b);
        let via = a.haversine_m(&m) + m.haversine_m(&b);
        // The interpolated point must not add length (within tolerance).
        prop_assert!(via <= total + total * 1e-3 + 0.5, "via {via} total {total}");
    }

    #[test]
    fn normalized_always_valid(lon in -1000.0f64..1000.0, lat in -200.0f64..200.0) {
        prop_assert!(GeoPoint::new(lon, lat).normalized().is_valid());
    }

    #[test]
    fn bbox_from_points_contains_all(pts in prop::collection::vec(arb_point(), 1..50)) {
        let bbox = BoundingBox::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bbox.contains(p));
        }
    }

    #[test]
    fn grid_cell_of_round_trips_through_bbox(
        p in arb_regional_point(),
        cell_deg in 0.01f64..2.0,
    ) {
        let grid = Grid::new(BoundingBox::new(20.0, 34.0, 28.0, 41.0), cell_deg).unwrap();
        let cell = grid.cell_of(&p).unwrap();
        let bbox = grid.cell_bbox(cell);
        prop_assert!(bbox.contains(&p), "cell bbox {bbox:?} missing {p:?}");
        // Cell centre maps back to the same cell.
        prop_assert_eq!(grid.cell_of_clamped(&grid.cell_center(cell)), cell);
    }

    #[test]
    fn cellid_pack_unpack(x in any::<u32>(), y in any::<u32>()) {
        let c = CellId { x, y };
        prop_assert_eq!(CellId::unpack(c.pack()), c);
    }

    #[test]
    fn rtree_query_equals_linear_scan(
        pts in prop::collection::vec(arb_regional_point(), 0..200),
        q_lon in 20.0f64..27.0,
        q_lat in 34.0f64..40.0,
        w in 0.0f64..3.0,
        h in 0.0f64..3.0,
    ) {
        let query = BoundingBox::new(q_lon, q_lat, q_lon + w, q_lat + h);
        let entries: Vec<RTreeEntry<usize>> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| RTreeEntry::point(p, i))
            .collect();
        let tree = RTree::bulk_load(entries);
        let mut got: Vec<usize> = tree.query(&query).iter().map(|e| e.item).collect();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_nearest_is_global_minimum(
        pts in prop::collection::vec(arb_regional_point(), 1..200),
        probe in arb_regional_point(),
    ) {
        let entries: Vec<RTreeEntry<usize>> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| RTreeEntry::point(p, i))
            .collect();
        let tree = RTree::bulk_load(entries);
        let (nearest, d) = tree.nearest(&probe, 1)[0];
        let best = pts
            .iter()
            .map(|p| probe.fast_dist2_m2(p).sqrt())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - best).abs() < 1e-6);
        let np = nearest.bbox.center();
        prop_assert!((probe.fast_dist2_m2(&np).sqrt() - best).abs() < 1e-6);
    }

    #[test]
    fn polygon_bbox_contains_polygon_points(
        pts in prop::collection::vec(arb_regional_point(), 3..20),
    ) {
        if let Some(poly) = Polygon::new(pts) {
            for v in poly.ring() {
                prop_assert!(poly.bbox().contains(v));
            }
        }
    }

    #[test]
    fn circle_polygon_contains_interior_points(
        center in arb_regional_point(),
        radius in 1_000.0f64..50_000.0,
        bearing in 0.0f64..360.0,
        frac in 0.0f64..0.8,
    ) {
        let poly = Polygon::circle(center, radius, 36);
        let inside = center.destination(bearing, radius * frac);
        prop_assert!(poly.contains(&inside));
        let outside = center.destination(bearing, radius * 1.3);
        prop_assert!(!poly.contains(&outside));
    }

    #[test]
    fn allen_relations_partition(
        s1 in 0i64..100, d1 in 1i64..100,
        s2 in 0i64..100, d2 in 1i64..100,
    ) {
        let a = TimeInterval::new(TimeMs(s1), TimeMs(s1 + d1));
        let b = TimeInterval::new(TimeMs(s2), TimeMs(s2 + d2));
        // Exactly one relation holds, and it is consistent with overlaps().
        let rel = a.allen(&b);
        prop_assert_eq!(rel.inverse(), b.allen(&a));
        use datacron_geo::AllenRelation::*;
        let disjoint = matches!(rel, Before | After | Meets | MetBy);
        prop_assert_eq!(a.overlaps(&b), !disjoint, "rel {:?}", rel);
    }

    #[test]
    fn interval_intersection_inside_both(
        s1 in 0i64..100, d1 in 1i64..100,
        s2 in 0i64..100, d2 in 1i64..100,
    ) {
        let a = TimeInterval::new(TimeMs(s1), TimeMs(s1 + d1));
        let b = TimeInterval::new(TimeMs(s2), TimeMs(s2 + d2));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.start >= a.start && i.end <= a.end);
            prop_assert!(i.start >= b.start && i.end <= b.end);
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }
}
