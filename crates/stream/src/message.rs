//! Stream elements: records, watermarks and end-of-stream markers.

use datacron_geo::TimeMs;
use serde::{Deserialize, Serialize};

/// A payload stamped with its event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record<T> {
    /// When the event happened in the real world.
    pub event_time: TimeMs,
    /// The payload.
    pub payload: T,
}

impl<T> Record<T> {
    /// Creates a record.
    pub fn new(event_time: TimeMs, payload: T) -> Self {
        Self {
            event_time,
            payload,
        }
    }

    /// Maps the payload, keeping the timestamp.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Record<U> {
        Record {
            event_time: self.event_time,
            payload: f(self.payload),
        }
    }
}

/// An element of a dataflow channel.
///
/// Watermarks assert that no further record with `event_time < t` will
/// arrive on this channel; `End` closes the stream (all upstream data has
/// been emitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message<T> {
    /// A data record.
    Record(Record<T>),
    /// Event-time progress marker.
    Watermark(TimeMs),
    /// End of stream.
    End,
}

impl<T> Message<T> {
    /// Convenience constructor for a record message.
    pub fn record(event_time: TimeMs, payload: T) -> Self {
        Message::Record(Record::new(event_time, payload))
    }

    /// The record inside, if this is a record message.
    pub fn as_record(&self) -> Option<&Record<T>> {
        match self {
            Message::Record(r) => Some(r),
            _ => None,
        }
    }

    /// True for [`Message::End`].
    pub fn is_end(&self) -> bool {
        matches!(self, Message::End)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_map_keeps_time() {
        let r = Record::new(TimeMs(42), 10u32).map(|x| x * 2);
        assert_eq!(r.event_time, TimeMs(42));
        assert_eq!(r.payload, 20);
    }

    #[test]
    fn message_accessors() {
        let m = Message::record(TimeMs(1), "a");
        assert_eq!(m.as_record().unwrap().payload, "a");
        assert!(!m.is_end());
        let wm: Message<&str> = Message::Watermark(TimeMs(5));
        assert!(wm.as_record().is_none());
        assert!(Message::<u8>::End.is_end());
    }
}
