//! An event-time stream-processing engine.
//!
//! datAcron runs its in-situ processing and event recognition on a
//! distributed streaming platform. This crate is the laptop-scale substitute
//! that preserves the semantics that matter to the analytics:
//!
//! * **event time & watermarks** — records carry event timestamps; sources
//!   are out-of-order; [`BoundedOutOfOrderness`] tracks progress and emits
//!   watermarks that drive window firing ([`message`], [`watermark`]);
//! * **operators** — map / filter / flat-map / keyed stateful process
//!   composed through the [`Operator`] trait ([`operator`]);
//! * **windows** — tumbling and sliding event-time windows with keyed
//!   aggregation and late-record accounting ([`window`]);
//! * **sharded parallel execution** — operators run on threads connected by
//!   bounded crossbeam channels (backpressure), with hash partitioning by
//!   key and watermark-aligned merging ([`runtime`]);
//! * **metrics** — throughput counters and latency histograms used by the
//!   latency experiments ([`metrics`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod message;
pub mod metrics;
pub mod operator;
pub mod runtime;
pub mod watermark;
pub mod window;

pub use clock::{Deadline, Stopwatch};
pub use message::{Message, Record};
pub use metrics::{LatencyHistogram, Throughput};
pub use operator::{Chain, FilterOp, FlatMapOp, InstrumentOp, KeyedProcessOp, MapOp, Operator};
pub use runtime::{
    collect_messages, merge_shards, run_source, shard_by_key, spawn_operator, StageHandle,
};
pub use watermark::{with_watermarks, BoundedOutOfOrderness};
pub use window::{
    Aggregator, CollectAgg, CountAgg, CountAny, KeyedWindowOp, WindowOutput, WindowSpec,
};
