//! Threaded execution: operator stages, key sharding and shard merging.
//!
//! Stages are OS threads connected by *bounded* crossbeam channels, so a slow
//! stage backpressures its producers exactly like a distributed streaming
//! system's bounded network buffers would.

use crate::message::Message;
use crate::operator::Operator;
use crossbeam::channel::{bounded, Receiver, Select, Sender};
use datacron_geo::TimeMs;
use std::hash::{Hash, Hasher};
use std::thread::JoinHandle;

/// Default channel capacity between stages.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Handle to a spawned stage thread.
pub struct StageHandle {
    join: JoinHandle<()>,
}

impl StageHandle {
    /// Waits for the stage to finish (it finishes when its input ends).
    pub fn join(self) {
        let _ = self.join.join();
    }
}

/// Spawns a thread that feeds `source` into a bounded channel.
pub fn run_source<T, I>(source: I, capacity: usize) -> (Receiver<Message<T>>, StageHandle)
where
    T: Send + 'static,
    I: IntoIterator<Item = Message<T>> + Send + 'static,
{
    let (tx, rx) = bounded(capacity.max(1));
    let join = std::thread::spawn(move || {
        for msg in source {
            let end = msg.is_end();
            if tx.send(msg).is_err() {
                return;
            }
            if end {
                return;
            }
        }
        // Iterator exhausted without an End marker: close the stream.
        let _ = tx.send(Message::End);
    });
    (rx, StageHandle { join })
}

/// Spawns an operator stage reading `input` and writing to a new channel.
pub fn spawn_operator<I, O, Op>(
    input: Receiver<Message<I>>,
    mut op: Op,
    capacity: usize,
) -> (Receiver<Message<O>>, StageHandle)
where
    I: Send + 'static,
    O: Send + 'static,
    Op: Operator<I, O> + 'static,
{
    let (tx, rx) = bounded(capacity.max(1));
    let join = std::thread::spawn(move || {
        for msg in input.iter() {
            match msg {
                Message::Record(rec) => {
                    let tx_ref = &tx;
                    op.on_record(rec, &mut |r| {
                        let _ = tx_ref.send(Message::Record(r));
                    });
                }
                Message::Watermark(wm) => {
                    let tx_ref = &tx;
                    op.on_watermark(wm, &mut |r| {
                        let _ = tx_ref.send(Message::Record(r));
                    });
                    if tx.send(Message::Watermark(wm)).is_err() {
                        return;
                    }
                }
                Message::End => {
                    let tx_ref = &tx;
                    op.on_end(&mut |r| {
                        let _ = tx_ref.send(Message::Record(r));
                    });
                    let _ = tx.send(Message::End);
                    return;
                }
            }
        }
        // Input hung up without End.
        let _ = tx.send(Message::End);
    });
    (rx, StageHandle { join })
}

fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Splits a stream into `n` keyed shards. Records route by key hash;
/// watermarks and `End` are broadcast to every shard.
pub fn shard_by_key<T, K, KF>(
    input: Receiver<Message<T>>,
    n: usize,
    mut key_fn: KF,
    capacity: usize,
) -> (Vec<Receiver<Message<T>>>, StageHandle)
where
    T: Send + 'static,
    K: Hash,
    KF: FnMut(&T) -> K + Send + 'static,
{
    assert!(n > 0, "need at least one shard");
    let mut senders: Vec<Sender<Message<T>>> = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded(capacity.max(1));
        senders.push(tx);
        receivers.push(rx);
    }
    let join = std::thread::spawn(move || {
        for msg in input.iter() {
            match msg {
                Message::Record(rec) => {
                    let shard = (hash_key(&key_fn(&rec.payload)) % n as u64) as usize;
                    let _ = senders[shard].send(Message::Record(rec));
                }
                Message::Watermark(wm) => {
                    for tx in &senders {
                        let _ = tx.send(Message::Watermark(wm));
                    }
                }
                Message::End => {
                    for tx in &senders {
                        let _ = tx.send(Message::End);
                    }
                    return;
                }
            }
        }
        for tx in &senders {
            let _ = tx.send(Message::End);
        }
    });
    (receivers, StageHandle { join })
}

/// Merges keyed shards back into one stream.
///
/// The merged watermark is the minimum of the per-shard watermarks (the
/// standard alignment rule), so downstream event-time logic stays correct.
pub fn merge_shards<T>(
    shards: Vec<Receiver<Message<T>>>,
    capacity: usize,
) -> (Receiver<Message<T>>, StageHandle)
where
    T: Send + 'static,
{
    assert!(!shards.is_empty(), "need at least one shard");
    let (tx, rx) = bounded(capacity.max(1));
    let join = std::thread::spawn(move || {
        let n = shards.len();
        let mut wms = vec![TimeMs::MIN; n];
        let mut ended = vec![false; n];
        let mut merged_wm = TimeMs::MIN;
        let mut live = n;
        let mut sel = Select::new();
        for rx in &shards {
            sel.recv(rx);
        }
        while live > 0 {
            let op = sel.select();
            let idx = op.index();
            match op.recv(&shards[idx]) {
                Ok(Message::Record(rec)) => {
                    let _ = tx.send(Message::Record(rec));
                }
                Ok(Message::Watermark(wm)) => {
                    wms[idx] = wms[idx].max(wm);
                    let min_wm = wms
                        .iter()
                        .zip(&ended)
                        .filter(|(_, e)| !**e)
                        .map(|(w, _)| *w)
                        .min()
                        .unwrap_or(wm);
                    if min_wm > merged_wm {
                        merged_wm = min_wm;
                        let _ = tx.send(Message::Watermark(merged_wm));
                    }
                }
                Ok(Message::End) | Err(_) => {
                    if !ended[idx] {
                        ended[idx] = true;
                        live -= 1;
                        sel.remove(idx);
                    }
                }
            }
        }
        let _ = tx.send(Message::End);
    });
    (rx, StageHandle { join })
}

/// Drains a channel into a `Vec` (test/sink helper). Returns all messages
/// up to and including `End`.
pub fn collect_messages<T>(rx: Receiver<Message<T>>) -> Vec<Message<T>> {
    let mut out = Vec::new();
    for msg in rx.iter() {
        let end = msg.is_end();
        out.push(msg);
        if end {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Record;
    use crate::operator::{FilterOp, MapOp};
    use crate::watermark::{with_watermarks, BoundedOutOfOrderness};

    fn source_msgs(n: i64) -> Vec<Message<i64>> {
        let src: Vec<(TimeMs, i64)> = (0..n).map(|i| (TimeMs(i * 10), i)).collect();
        with_watermarks(src, BoundedOutOfOrderness::new(0, 10)).collect()
    }

    #[test]
    fn source_to_operator_to_sink() {
        let (rx, h1) = run_source(source_msgs(100), 16);
        let (rx, h2) = spawn_operator(rx, MapOp(|x: i64| x * 2), 16);
        let out = collect_messages(rx);
        h1.join();
        h2.join();
        let values: Vec<i64> = out
            .iter()
            .filter_map(|m| m.as_record().map(|r| r.payload))
            .collect();
        assert_eq!(values, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert!(out.last().unwrap().is_end());
    }

    #[test]
    fn source_without_end_marker_gets_closed() {
        let msgs = vec![Message::record(TimeMs(1), 5u32)];
        let (rx, h) = run_source(msgs, 4);
        let out = collect_messages(rx);
        h.join();
        assert_eq!(out.len(), 2);
        assert!(out[1].is_end());
    }

    #[test]
    fn shard_and_merge_preserves_all_records() {
        let (rx, h0) = run_source(source_msgs(1000), 64);
        let (shards, h1) = shard_by_key(rx, 4, |x: &i64| *x, 64);
        // A per-shard identity stage, then merge.
        let mut handles = vec![h0, h1];
        let mut staged = Vec::new();
        for shard in shards {
            let (rx, h) = spawn_operator(shard, FilterOp(|_: &i64| true), 64);
            staged.push(rx);
            handles.push(h);
        }
        let (rx, hm) = merge_shards(staged, 64);
        handles.push(hm);
        let out = collect_messages(rx);
        for h in handles {
            h.join();
        }
        let mut values: Vec<i64> = out
            .iter()
            .filter_map(|m| m.as_record().map(|r| r.payload))
            .collect();
        values.sort_unstable();
        assert_eq!(values, (0..1000).collect::<Vec<_>>());
        assert!(out.last().unwrap().is_end());
    }

    #[test]
    fn merged_watermarks_are_min_aligned_and_monotone() {
        let (rx, h0) = run_source(source_msgs(500), 64);
        let (shards, h1) = shard_by_key(rx, 3, |x: &i64| *x, 64);
        let (rx, hm) = merge_shards(shards, 64);
        let out = collect_messages(rx);
        h0.join();
        h1.join();
        hm.join();
        let wms: Vec<TimeMs> = out
            .iter()
            .filter_map(|m| match m {
                Message::Watermark(w) => Some(*w),
                _ => None,
            })
            .collect();
        assert!(!wms.is_empty());
        for pair in wms.windows(2) {
            assert!(pair[0] < pair[1], "watermark regression {pair:?}");
        }
    }

    #[test]
    fn same_key_routes_to_same_shard() {
        let msgs: Vec<Message<u32>> = (0..100)
            .map(|i| Message::record(TimeMs(i), (i % 7) as u32))
            .chain(std::iter::once(Message::End))
            .collect();
        let (rx, h0) = run_source(msgs, 16);
        // Capacity must cover the whole input because the shards are
        // drained sequentially below (the router must never block).
        let (shards, h1) = shard_by_key(rx, 4, |x: &u32| *x, 256);
        let outs: Vec<Vec<Message<u32>>> = shards.into_iter().map(collect_messages).collect();
        h0.join();
        h1.join();
        // Each key appears on exactly one shard.
        for key in 0..7u32 {
            let shards_with_key = outs
                .iter()
                .filter(|o| {
                    o.iter()
                        .any(|m| m.as_record().map(|r| r.payload) == Some(key))
                })
                .count();
            assert_eq!(shards_with_key, 1, "key {key} split across shards");
        }
    }

    #[test]
    fn backpressure_does_not_deadlock() {
        // Tiny capacity forces the producer to block on the consumer.
        let (rx, h0) = run_source(source_msgs(10_000), 2);
        let (rx, h1) = spawn_operator(rx, MapOp(|x: i64| x + 1), 2);
        let out = collect_messages(rx);
        h0.join();
        h1.join();
        let n = out.iter().filter(|m| m.as_record().is_some()).count();
        assert_eq!(n, 10_000);
    }

    #[test]
    fn operator_emitting_on_end_flushes() {
        struct FlushOnEnd(Vec<i64>);
        impl Operator<i64, i64> for FlushOnEnd {
            fn on_record(&mut self, rec: Record<i64>, _out: &mut dyn FnMut(Record<i64>)) {
                self.0.push(rec.payload);
            }
            fn on_end(&mut self, out: &mut dyn FnMut(Record<i64>)) {
                out(Record::new(TimeMs(0), self.0.iter().sum()));
            }
        }
        let (rx, h0) = run_source(source_msgs(10), 8);
        let (rx, h1) = spawn_operator(rx, FlushOnEnd(Vec::new()), 8);
        let out = collect_messages(rx);
        h0.join();
        h1.join();
        let values: Vec<i64> = out
            .iter()
            .filter_map(|m| m.as_record().map(|r| r.payload))
            .collect();
        assert_eq!(values, vec![45]);
    }
}
