//! The designated clock module: the one place (together with
//! `metrics.rs` and `rdf::clock`) where the workspace reads the wall
//! clock.
//!
//! Everything else measures elapsed time through [`Stopwatch`] and
//! expresses timeouts through [`Deadline`]. Funnelling `Instant::now()`
//! through a single module keeps timing behaviour auditable (lint rule
//! L4, `wallclock`) and gives a later simulated-clock backend exactly
//! one seam to replace.

use std::time::{Duration, Instant};

/// A monotonic stopwatch, started at construction.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start (or the last [`Self::restart`]).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole microseconds, saturating at `u64::MAX`.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole milliseconds, saturating at `u64::MAX`.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Elapsed seconds as a float (for rate computations).
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the lap time.
    pub fn restart(&mut self) -> Duration {
        let lap = self.started.elapsed();
        self.started = Instant::now();
        lap
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// A point in the future against which timeouts are checked.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Instant::now() + d,
        }
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left until the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
        assert!(sw.elapsed_us() >= 1000);
    }

    #[test]
    fn restart_returns_lap() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let lap = sw.restart();
        assert!(lap >= Duration::from_millis(1));
        assert!(sw.elapsed() < lap);
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3000));
    }
}
