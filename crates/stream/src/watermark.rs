//! Watermark generation for out-of-order sources.

use crate::message::{Message, Record};
use datacron_geo::TimeMs;

/// The standard bounded-out-of-orderness watermark strategy: the watermark
/// trails the maximum seen event time by a fixed delay, and is (re)emitted
/// every `emit_every` records.
#[derive(Debug, Clone)]
pub struct BoundedOutOfOrderness {
    delay_ms: i64,
    emit_every: usize,
    max_event_time: TimeMs,
    since_emit: usize,
    last_emitted: TimeMs,
}

impl BoundedOutOfOrderness {
    /// Creates a strategy allowing `delay_ms` of disorder, emitting a
    /// watermark every `emit_every` records (min 1).
    pub fn new(delay_ms: i64, emit_every: usize) -> Self {
        Self {
            delay_ms: delay_ms.max(0),
            emit_every: emit_every.max(1),
            max_event_time: TimeMs::MIN,
            since_emit: 0,
            last_emitted: TimeMs::MIN,
        }
    }

    /// Observes a record's event time; returns a watermark to emit after the
    /// record, when due.
    pub fn observe(&mut self, event_time: TimeMs) -> Option<TimeMs> {
        if event_time > self.max_event_time {
            self.max_event_time = event_time;
        }
        self.since_emit += 1;
        if self.since_emit >= self.emit_every {
            self.since_emit = 0;
            let wm = TimeMs(self.max_event_time.millis().saturating_sub(self.delay_ms));
            if wm > self.last_emitted {
                self.last_emitted = wm;
                return Some(wm);
            }
        }
        None
    }

    /// The watermark value that would close the stream (max event time, so
    /// every window fires at end-of-input).
    pub fn final_watermark(&self) -> TimeMs {
        self.max_event_time
    }
}

/// Wraps an iterator of `(event_time, payload)` into a message stream with
/// periodic watermarks and a final watermark + `End`.
pub fn with_watermarks<T, I>(
    source: I,
    mut strategy: BoundedOutOfOrderness,
) -> impl Iterator<Item = Message<T>>
where
    I: IntoIterator<Item = (TimeMs, T)>,
{
    let mut iter = source.into_iter();
    let mut pending: std::collections::VecDeque<Message<T>> =
        std::collections::VecDeque::with_capacity(2);
    let mut finished = false;
    std::iter::from_fn(move || {
        if let Some(m) = pending.pop_front() {
            return Some(m);
        }
        if finished {
            return None;
        }
        match iter.next() {
            Some((t, payload)) => {
                // Record first, then the watermark it triggered.
                pending.push_back(Message::Record(Record::new(t, payload)));
                if let Some(wm) = strategy.observe(t) {
                    pending.push_back(Message::Watermark(wm));
                }
                pending.pop_front()
            }
            None => {
                finished = true;
                if strategy.final_watermark() > TimeMs::MIN {
                    pending.push_back(Message::Watermark(strategy.final_watermark()));
                }
                pending.push_back(Message::End);
                pending.pop_front()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_trails_max_by_delay() {
        let mut s = BoundedOutOfOrderness::new(100, 1);
        assert_eq!(s.observe(TimeMs(1000)), Some(TimeMs(900)));
        assert_eq!(s.observe(TimeMs(1500)), Some(TimeMs(1400)));
        // Out-of-order record does not regress the watermark.
        assert_eq!(s.observe(TimeMs(1200)), None);
        assert_eq!(s.observe(TimeMs(1600)), Some(TimeMs(1500)));
    }

    #[test]
    fn emit_every_batches() {
        let mut s = BoundedOutOfOrderness::new(0, 3);
        assert_eq!(s.observe(TimeMs(1)), None);
        assert_eq!(s.observe(TimeMs(2)), None);
        assert_eq!(s.observe(TimeMs(3)), Some(TimeMs(3)));
        assert_eq!(s.observe(TimeMs(4)), None);
    }

    #[test]
    fn watermarks_never_regress() {
        let mut s = BoundedOutOfOrderness::new(50, 1);
        let times = [1000, 400, 300, 1001, 200, 1002];
        let mut last = TimeMs::MIN;
        for t in times {
            if let Some(wm) = s.observe(TimeMs(t)) {
                assert!(wm > last);
                last = wm;
            }
        }
        assert_eq!(last, TimeMs(952));
    }

    #[test]
    fn with_watermarks_stream_shape() {
        let src = vec![(TimeMs(10), 'a'), (TimeMs(30), 'b'), (TimeMs(20), 'c')];
        let msgs: Vec<Message<char>> =
            with_watermarks(src, BoundedOutOfOrderness::new(5, 2)).collect();
        // Records in order, watermark after the 2nd record, final watermark
        // (= max event time 30) then End.
        assert_eq!(
            msgs,
            vec![
                Message::record(TimeMs(10), 'a'),
                Message::record(TimeMs(30), 'b'),
                Message::Watermark(TimeMs(25)),
                Message::record(TimeMs(20), 'c'),
                Message::Watermark(TimeMs(30)),
                Message::End,
            ]
        );
    }

    #[test]
    fn empty_source_just_ends() {
        let msgs: Vec<Message<u8>> =
            with_watermarks(Vec::new(), BoundedOutOfOrderness::new(5, 2)).collect();
        assert_eq!(msgs, vec![Message::End]);
    }
}
