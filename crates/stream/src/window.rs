//! Event-time windows: tumbling and sliding, keyed, watermark-driven.

use crate::message::Record;
use crate::operator::Operator;
use datacron_geo::{TimeInterval, TimeMs};
use rustc_hash::FxHashMap;
use std::hash::Hash;

/// A window shape: `size_ms` wide, advancing by `slide_ms`.
/// `slide_ms == size_ms` gives tumbling windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length in milliseconds.
    pub size_ms: i64,
    /// Hop between consecutive window starts, in milliseconds.
    pub slide_ms: i64,
}

impl WindowSpec {
    /// A tumbling window of `size_ms`.
    pub fn tumbling(size_ms: i64) -> Self {
        Self {
            size_ms,
            slide_ms: size_ms,
        }
    }

    /// A sliding window.
    ///
    /// `slide_ms` must be positive and no larger than `size_ms`.
    pub fn sliding(size_ms: i64, slide_ms: i64) -> Self {
        assert!(slide_ms > 0 && slide_ms <= size_ms, "invalid window spec");
        Self { size_ms, slide_ms }
    }

    /// The start timestamps of every window containing `t`.
    pub fn assign(&self, t: TimeMs) -> Vec<TimeMs> {
        let ts = t.millis();
        // Last window start ≤ ts, aligned to the slide.
        let last_start = ts - ts.rem_euclid(self.slide_ms);
        let mut starts = Vec::with_capacity((self.size_ms / self.slide_ms) as usize);
        let mut start = last_start;
        while start > ts - self.size_ms {
            starts.push(TimeMs(start));
            start -= self.slide_ms;
        }
        starts
    }

    /// The interval of the window starting at `start`.
    pub fn window_at(&self, start: TimeMs) -> TimeInterval {
        TimeInterval::new(start, start + self.size_ms)
    }
}

/// Incremental aggregation of window contents.
pub trait Aggregator: Default + Send {
    /// Input element type.
    type In;
    /// Aggregate result type.
    type Out;
    /// Folds one element into the aggregate.
    fn add(&mut self, value: &Self::In);
    /// Produces the result when the window fires.
    fn finish(self) -> Self::Out;
}

/// Output of a fired window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutput<K, A> {
    /// The key.
    pub key: K,
    /// The window interval.
    pub window: TimeInterval,
    /// The aggregate.
    pub value: A,
}

/// A keyed event-time window operator.
///
/// Records are assigned to windows by event time; a window `[s, e)` fires
/// when a watermark `≥ e` arrives, emitting one [`WindowOutput`] record
/// stamped `e - 1` (the last instant inside the window, so downstream
/// watermarks remain correct). Records older than the watermark are *late*
/// and dropped (counted in [`KeyedWindowOp::late_count`]).
pub struct KeyedWindowOp<K, A, KF>
where
    A: Aggregator,
{
    spec: WindowSpec,
    key_fn: KF,
    /// Open windows: (window start) → (key → aggregate).
    panes: std::collections::BTreeMap<TimeMs, FxHashMap<K, A>>,
    watermark: TimeMs,
    late: u64,
}

impl<K, A, KF> KeyedWindowOp<K, A, KF>
where
    A: Aggregator,
{
    /// Creates the operator.
    pub fn new(spec: WindowSpec, key_fn: KF) -> Self {
        Self {
            spec,
            key_fn,
            panes: std::collections::BTreeMap::new(),
            watermark: TimeMs::MIN,
            late: 0,
        }
    }

    /// Number of records dropped as late so far.
    pub fn late_count(&self) -> u64 {
        self.late
    }

    /// Number of currently open window panes (across keys).
    pub fn open_panes(&self) -> usize {
        self.panes.len()
    }
}

impl<I, K, A, KF> Operator<I, WindowOutput<K, A::Out>> for KeyedWindowOp<K, A, KF>
where
    K: Eq + Hash + Clone + Send,
    A: Aggregator<In = I> + Send,
    A::Out: Send,
    KF: FnMut(&I) -> K + Send,
{
    fn on_record(&mut self, rec: Record<I>, _out: &mut dyn FnMut(Record<WindowOutput<K, A::Out>>)) {
        if rec.event_time < self.watermark {
            self.late += 1;
            return;
        }
        let key = (self.key_fn)(&rec.payload);
        for start in self.spec.assign(rec.event_time) {
            // A window that would already have fired cannot accept data.
            if start + self.spec.size_ms <= self.watermark {
                continue;
            }
            let pane = self.panes.entry(start).or_default();
            pane.entry(key.clone()).or_default().add(&rec.payload);
        }
    }

    fn on_watermark(&mut self, wm: TimeMs, out: &mut dyn FnMut(Record<WindowOutput<K, A::Out>>)) {
        self.watermark = self.watermark.max(wm);
        while let Some((&start, _)) = self.panes.first_key_value() {
            let window = self.spec.window_at(start);
            if window.end > wm {
                break;
            }
            let pane = self.panes.remove(&start).expect("pane exists");
            for (key, agg) in pane {
                out(Record::new(
                    window.end - 1,
                    WindowOutput {
                        key,
                        window,
                        value: agg.finish(),
                    },
                ));
            }
        }
    }

    fn on_end(&mut self, out: &mut dyn FnMut(Record<WindowOutput<K, A::Out>>)) {
        // Flush every open window as if time advanced past it.
        self.on_watermark(TimeMs::MAX, out);
    }
}

/// Counting aggregator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountAgg(pub u64);

impl Aggregator for CountAgg {
    type In = ();
    type Out = u64;
    fn add(&mut self, _: &()) {
        self.0 += 1;
    }
    fn finish(self) -> u64 {
        self.0
    }
}

/// Generic counting aggregator over any element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountAny<T> {
    count: u64,
    _t: std::marker::PhantomData<fn() -> T>,
}

impl<T> Default for CountAny<T> {
    fn default() -> Self {
        Self {
            count: 0,
            _t: std::marker::PhantomData,
        }
    }
}

impl<T> Aggregator for CountAny<T> {
    type In = T;
    type Out = u64;
    fn add(&mut self, _: &T) {
        self.count += 1;
    }
    fn finish(self) -> u64 {
        self.count
    }
}

/// Collects window elements into a `Vec` (used where the firing logic needs
/// the raw contents, e.g. trajectory segments per window).
#[derive(Debug, Clone)]
pub struct CollectAgg<T>(pub Vec<T>);

impl<T> Default for CollectAgg<T> {
    fn default() -> Self {
        Self(Vec::new())
    }
}

impl<T: Clone + Send> Aggregator for CollectAgg<T> {
    type In = T;
    type Out = Vec<T>;
    fn add(&mut self, value: &T) {
        self.0.push(value.clone());
    }
    fn finish(self) -> Vec<T> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn tumbling_assignment() {
        let spec = WindowSpec::tumbling(100);
        assert_eq!(spec.assign(TimeMs(0)), vec![TimeMs(0)]);
        assert_eq!(spec.assign(TimeMs(99)), vec![TimeMs(0)]);
        assert_eq!(spec.assign(TimeMs(100)), vec![TimeMs(100)]);
        assert_eq!(spec.assign(TimeMs(250)), vec![TimeMs(200)]);
    }

    #[test]
    fn sliding_assignment() {
        let spec = WindowSpec::sliding(100, 25);
        let starts = spec.assign(TimeMs(110));
        assert_eq!(
            starts,
            vec![TimeMs(100), TimeMs(75), TimeMs(50), TimeMs(25)]
        );
        // Each assigned window actually contains t.
        for s in starts {
            assert!(spec.window_at(s).contains(TimeMs(110)));
        }
    }

    #[test]
    #[should_panic(expected = "invalid window spec")]
    fn sliding_rejects_bad_slide() {
        WindowSpec::sliding(100, 200);
    }

    #[test]
    fn negative_times_assign_correctly() {
        let spec = WindowSpec::tumbling(100);
        assert_eq!(spec.assign(TimeMs(-1)), vec![TimeMs(-100)]);
        assert!(spec.window_at(TimeMs(-100)).contains(TimeMs(-1)));
    }

    fn run_count_windows(
        events: &[(i64, u32)],
        wms: &[(usize, i64)],
        spec: WindowSpec,
    ) -> Vec<(u32, i64, u64)> {
        // Interleave watermarks at positions given by wms (index, value).
        let mut input: Vec<Message<u32>> = Vec::new();
        let mut wm_iter = wms.iter().peekable();
        for (i, &(t, k)) in events.iter().enumerate() {
            input.push(Message::record(TimeMs(t), k));
            while let Some(&&(pos, wm)) = wm_iter.peek() {
                if pos == i {
                    input.push(Message::Watermark(TimeMs(wm)));
                    wm_iter.next();
                } else {
                    break;
                }
            }
        }
        input.push(Message::End);
        let mut op: KeyedWindowOp<u32, CountAny<u32>, _> = KeyedWindowOp::new(spec, |k: &u32| *k);
        let out = op.run(input);
        out.iter()
            .filter_map(|m| m.as_record())
            .map(|r| {
                (
                    r.payload.key,
                    r.payload.window.start.millis(),
                    r.payload.value,
                )
            })
            .collect()
    }

    #[test]
    fn tumbling_count_fires_on_watermark() {
        let out = run_count_windows(
            &[(10, 1), (20, 1), (30, 2), (110, 1)],
            &[(3, 100)],
            WindowSpec::tumbling(100),
        );
        // Window [0,100) fires at watermark 100 with counts 2 (key 1) and 1
        // (key 2); window [100,200) fires at End with count 1.
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(1, 0, 2), (1, 100, 1), (2, 0, 1)]);
    }

    #[test]
    fn late_records_dropped_and_counted() {
        let mut op: KeyedWindowOp<u32, CountAny<u32>, _> =
            KeyedWindowOp::new(WindowSpec::tumbling(100), |k: &u32| *k);
        let input = vec![
            Message::record(TimeMs(10), 1),
            Message::Watermark(TimeMs(150)),
            // Late: event time 50 < watermark 150.
            Message::record(TimeMs(50), 1),
            Message::End,
        ];
        let out = op.run(input);
        let fired: Vec<u64> = out
            .iter()
            .filter_map(|m| m.as_record())
            .map(|r| r.payload.value)
            .collect();
        assert_eq!(fired, vec![1]);
        assert_eq!(op.late_count(), 1);
    }

    #[test]
    fn sliding_windows_overlapping_counts() {
        let out = run_count_windows(&[(10, 1), (60, 1)], &[], WindowSpec::sliding(100, 50));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        // t=10 → windows starting -50, 0; t=60 → windows 0, 50.
        assert_eq!(sorted, vec![(1, -50, 1), (1, 0, 2), (1, 50, 1)]);
    }

    #[test]
    fn window_output_timestamp_inside_window() {
        let mut op: KeyedWindowOp<u32, CountAny<u32>, _> =
            KeyedWindowOp::new(WindowSpec::tumbling(100), |k: &u32| *k);
        let input = vec![
            Message::record(TimeMs(10), 1),
            Message::Watermark(TimeMs(100)),
            Message::End,
        ];
        let out = op.run(input);
        let rec = out.iter().find_map(|m| m.as_record()).unwrap();
        assert_eq!(rec.event_time, TimeMs(99));
        assert!(rec.payload.window.contains(rec.event_time));
    }

    #[test]
    fn end_flushes_open_windows() {
        let out = run_count_windows(&[(10, 7)], &[], WindowSpec::tumbling(100));
        assert_eq!(out, vec![(7, 0, 1)]);
    }

    #[test]
    fn collect_agg_preserves_order() {
        let mut agg = CollectAgg::<i32>::default();
        agg.add(&3);
        agg.add(&1);
        agg.add(&2);
        assert_eq!(agg.finish(), vec![3, 1, 2]);
    }

    #[test]
    fn count_agg_unit() {
        let mut agg = CountAgg::default();
        agg.add(&());
        agg.add(&());
        assert_eq!(agg.finish(), 2);
    }
}
