//! Throughput and latency instrumentation.
//!
//! The paper's headline operational requirement is millisecond latency;
//! these types produce the measurements the latency experiments (E8, E11)
//! report.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A thread-safe event counter with elapsed-time rate reporting.
#[derive(Debug)]
pub struct Throughput {
    started: Instant,
    count: AtomicU64,
}

impl Default for Throughput {
    fn default() -> Self {
        Self::new()
    }
}

impl Throughput {
    /// Starts counting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            count: AtomicU64::new(0),
        }
    }

    /// Records `n` events.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total events recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Events per second since construction.
    pub fn rate_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count() as f64 / secs
        }
    }
}

/// Number of logarithmic latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, bucket 0 covers `[0, 2)` µs.
const BUCKETS: usize = 40;

/// A thread-safe log-scale latency histogram in microseconds.
///
/// Log buckets give ≤ 2× relative quantile error across nine decades, which
/// is ample for distinguishing "microseconds" from "milliseconds" from
/// "seconds" — the distinction the paper's latency requirement draws.
#[derive(Debug)]
pub struct LatencyHistogram {
    inner: Mutex<Hist>,
}

#[derive(Debug, Clone)]
struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for LatencyHistogram {
    /// Snapshots the histogram; the clone records independently afterwards.
    fn clone(&self) -> Self {
        Self {
            inner: Mutex::new(self.inner.lock().clone()),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Hist {
                buckets: [0; BUCKETS],
                count: 0,
                sum_us: 0,
                max_us: 0,
            }),
        }
    }

    /// Records one latency sample in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - u64::leading_zeros(us.max(1)) as usize - 1).min(BUCKETS - 1);
        let mut h = self.inner.lock();
        h.buckets[bucket] += 1;
        h.count += 1;
        h.sum_us += us;
        h.max_us = h.max_us.max(us);
    }

    /// Records a latency sample given a start instant.
    pub fn record_since(&self, start: Instant) {
        self.record_us(start.elapsed().as_micros() as u64);
    }

    /// Records the elapsed time on a [`crate::clock::Stopwatch`]. This is
    /// the form lint-clean code uses: the stopwatch is the only sanctioned
    /// way to hold a start time outside the clock modules.
    pub fn observe(&self, sw: &crate::clock::Stopwatch) {
        self.record_us(sw.elapsed_us());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        let h = self.inner.lock();
        if h.count == 0 {
            0.0
        } else {
            h.sum_us as f64 / h.count as f64
        }
    }

    /// Maximum recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.inner.lock().max_us
    }

    /// Sum of all recorded samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.inner.lock().sum_us
    }

    /// Approximate quantile (`q` in `[0,1]`) in microseconds: the upper edge
    /// of the bucket containing the q-th sample, clamped to the observed
    /// maximum so `quantile_us(q) <= max_us()` always holds (the raw bucket
    /// edge can exceed every sample — a single 5 µs sample lands in the
    /// `[4, 8)` bucket, whose edge would report p99 = 8 µs).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let h = self.inner.lock();
        if h.count == 0 {
            return 0;
        }
        let target = ((h.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (1u64 << (i + 1)).min(h.max_us);
            }
        }
        h.max_us
    }

    /// `(p50, p99, max)` in microseconds — the tuple the reports print.
    pub fn summary_us(&self) -> (u64, u64, u64) {
        (self.quantile_us(0.5), self.quantile_us(0.99), self.max_us())
    }

    /// Alias for [`LatencyHistogram::quantile_us`] with `q` expressed as a
    /// percentile in `[0, 100]` — `percentile(99.0)` is the p99 in µs.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile_us(p / 100.0)
    }

    /// Folds another histogram into this one (bucket-wise addition); used to
    /// aggregate per-worker histograms into one server-wide distribution.
    pub fn merge(&self, other: &LatencyHistogram) {
        // Snapshot `other` before locking `self` so the two locks are never
        // held together; self-merge would double counts, so reject it.
        if std::ptr::eq(self, other) {
            return;
        }
        let o = other.inner.lock().clone();
        let mut h = self.inner.lock();
        for (b, ob) in h.buckets.iter_mut().zip(o.buckets.iter()) {
            *b += ob;
        }
        h.count += o.count;
        h.sum_us += o.sum_us;
        h.max_us = h.max_us.max(o.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_counts() {
        let t = Throughput::new();
        t.add(10);
        t.add(5);
        assert_eq!(t.count(), 15);
        assert!(t.rate_per_sec() > 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_us(), 10_000);
        // p50 bucket upper edge must be >= 100 (the median sample) and
        // within 2x of it.
        let p50 = h.quantile_us(0.5);
        assert!((100..=256).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 10_000, "p99 = {p99}");
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.summary_us(), (0, 0, 0));
    }

    #[test]
    fn histogram_mean() {
        let h = LatencyHistogram::new();
        h.record_us(100);
        h.record_us(300);
        assert_eq!(h.mean_us(), 200.0);
    }

    #[test]
    fn histogram_zero_sample_goes_to_first_bucket() {
        let h = LatencyHistogram::new();
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(1.0) <= 2);
    }

    #[test]
    fn histogram_concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record_us(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn clone_snapshots_and_diverges() {
        let h = LatencyHistogram::new();
        h.record_us(100);
        let c = h.clone();
        assert_eq!(c.count(), 1);
        assert_eq!(c.max_us(), 100);
        h.record_us(9_000);
        assert_eq!(c.count(), 1, "clone must not share state");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for us in [10u64, 20, 30] {
            a.record_us(us);
        }
        for us in [1_000u64, 50_000] {
            b.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max_us(), 50_000);
        assert_eq!(a.mean_us(), (10.0 + 20.0 + 30.0 + 1_000.0 + 50_000.0) / 5.0);
        // b is untouched.
        assert_eq!(b.count(), 2);
        // Merged quantiles bracket the combined samples.
        assert!(a.quantile_us(1.0) >= 50_000);
    }

    #[test]
    fn merge_with_self_is_noop() {
        let a = LatencyHistogram::new();
        a.record_us(42);
        a.merge(&a);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn percentile_matches_quantile() {
        let h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record_us(i * 10);
        }
        assert_eq!(h.percentile(50.0), h.quantile_us(0.5));
        assert_eq!(h.percentile(99.0), h.quantile_us(0.99));
        assert_eq!(h.percentile(100.0), h.quantile_us(1.0));
    }

    #[test]
    fn quantile_never_exceeds_max() {
        // Regression: a single 5 µs sample lands in the [4, 8) bucket and
        // used to report p99 = 8 µs with max_us = 5 µs.
        let h = LatencyHistogram::new();
        h.record_us(5);
        assert_eq!(h.max_us(), 5);
        assert_eq!(h.quantile_us(0.99), 5);
        assert_eq!(h.quantile_us(1.0), 5);
        assert_eq!(h.percentile(50.0), 5);
    }

    #[test]
    fn sum_us_accumulates() {
        let h = LatencyHistogram::new();
        h.record_us(100);
        h.record_us(250);
        assert_eq!(h.sum_us(), 350);
    }

    #[test]
    fn repeated_merge_into_fresh_accumulator_never_double_counts() {
        // The stats path folds per-worker histograms into a fresh
        // accumulator on every call; repeating the aggregation must give
        // identical results every round.
        let workers: Vec<LatencyHistogram> = (0..4)
            .map(|w| {
                let h = LatencyHistogram::new();
                for i in 0..25u64 {
                    h.record_us(w * 1_000 + i * 10);
                }
                h
            })
            .collect();
        let mut last: Option<(u64, u64, u64, u64)> = None;
        for _ in 0..3 {
            let total = LatencyHistogram::new();
            for w in &workers {
                total.merge(w);
            }
            let snap = (
                total.count(),
                total.sum_us(),
                total.max_us(),
                total.quantile_us(0.99),
            );
            assert_eq!(snap.0, 100);
            if let Some(prev) = last {
                assert_eq!(prev, snap, "aggregation must be idempotent per round");
            }
            last = Some(snap);
        }
        // Source histograms are untouched by the repeated merges.
        for w in &workers {
            assert_eq!(w.count(), 25);
        }
    }

    proptest::proptest! {
        /// Invariant: for any sample set and any q, the reported quantile
        /// never exceeds the observed maximum and quantiles stay monotone
        /// in q.
        #[test]
        fn quantile_bounded_by_max(
            samples in proptest::collection::vec(0u64..2_000_000_000, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let h = LatencyHistogram::new();
            for &s in &samples {
                h.record_us(s);
            }
            let max = h.max_us();
            proptest::prop_assert_eq!(max, *samples.iter().max().unwrap());
            proptest::prop_assert!(h.quantile_us(q) <= max);
            proptest::prop_assert!(h.quantile_us(0.5) <= h.quantile_us(1.0));
        }
    }

    #[test]
    fn quantile_monotone_in_q() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_us(i);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile_us(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }
}
