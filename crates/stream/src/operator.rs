//! The operator abstraction and the stateless/stateful building blocks.

use crate::clock::Stopwatch;
use crate::message::{Message, Record};
use crate::metrics::{LatencyHistogram, Throughput};
use datacron_geo::TimeMs;
use rustc_hash::FxHashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A dataflow operator transforming an input stream into an output stream.
///
/// Operators receive records and watermarks and emit output messages through
/// the `out` callback. The runtime guarantees `on_watermark` values are
/// monotonically non-decreasing and forwards watermarks downstream itself —
/// operators only emit *records* unless they deliberately manipulate time.
pub trait Operator<I, O>: Send {
    /// Handles one input record.
    fn on_record(&mut self, rec: Record<I>, out: &mut dyn FnMut(Record<O>));

    /// Handles event-time progress. Default: no reaction (stateless ops).
    fn on_watermark(&mut self, _wm: TimeMs, _out: &mut dyn FnMut(Record<O>)) {}

    /// Called once when the input ends, to flush remaining state.
    fn on_end(&mut self, _out: &mut dyn FnMut(Record<O>)) {}

    /// Drives a whole message iterator through this operator, collecting the
    /// output messages (records interleaved with forwarded watermarks).
    /// Convenient for tests and single-threaded execution.
    fn run<It>(&mut self, input: It) -> Vec<Message<O>>
    where
        It: IntoIterator<Item = Message<I>>,
        Self: Sized,
    {
        let mut output = Vec::new();
        for msg in input {
            match msg {
                Message::Record(r) => {
                    self.on_record(r, &mut |o| output.push(Message::Record(o)));
                }
                Message::Watermark(wm) => {
                    self.on_watermark(wm, &mut |o| output.push(Message::Record(o)));
                    output.push(Message::Watermark(wm));
                }
                Message::End => {
                    self.on_end(&mut |o| output.push(Message::Record(o)));
                    output.push(Message::End);
                }
            }
        }
        output
    }
}

/// A stateless 1→1 transformation.
pub struct MapOp<F>(pub F);

impl<I, O, F> Operator<I, O> for MapOp<F>
where
    F: FnMut(I) -> O + Send,
{
    fn on_record(&mut self, rec: Record<I>, out: &mut dyn FnMut(Record<O>)) {
        let t = rec.event_time;
        out(Record::new(t, (self.0)(rec.payload)));
    }
}

/// A stateless filter.
pub struct FilterOp<F>(pub F);

impl<T, F> Operator<T, T> for FilterOp<F>
where
    T: Send,
    F: FnMut(&T) -> bool + Send,
{
    fn on_record(&mut self, rec: Record<T>, out: &mut dyn FnMut(Record<T>)) {
        if (self.0)(&rec.payload) {
            out(rec);
        }
    }
}

/// A stateless 1→N transformation.
pub struct FlatMapOp<F>(pub F);

impl<I, O, F, It> Operator<I, O> for FlatMapOp<F>
where
    F: FnMut(I) -> It + Send,
    It: IntoIterator<Item = O>,
{
    fn on_record(&mut self, rec: Record<I>, out: &mut dyn FnMut(Record<O>)) {
        let t = rec.event_time;
        for o in (self.0)(rec.payload) {
            out(Record::new(t, o));
        }
    }
}

/// A keyed stateful operator: per-key state `S`, user process function.
///
/// This is the workhorse under the in-situ compression and the CEP engine:
/// both keep per-object state and react to each report.
pub struct KeyedProcessOp<K, S, KF, PF> {
    key_fn: KF,
    process: PF,
    state: FxHashMap<K, S>,
}

impl<K, S, KF, PF> KeyedProcessOp<K, S, KF, PF> {
    /// Creates a keyed operator from a key extractor and a process function
    /// `fn(&key, &mut state, record, emit)`.
    pub fn new(key_fn: KF, process: PF) -> Self {
        Self {
            key_fn,
            process,
            state: FxHashMap::default(),
        }
    }

    /// Number of keys with live state.
    pub fn key_count(&self) -> usize {
        self.state.len()
    }
}

impl<I, O, K, S, KF, PF> Operator<I, O> for KeyedProcessOp<K, S, KF, PF>
where
    K: Eq + Hash + Clone + Send,
    S: Default + Send,
    KF: FnMut(&I) -> K + Send,
    PF: FnMut(&K, &mut S, Record<I>, &mut dyn FnMut(Record<O>)) + Send,
{
    fn on_record(&mut self, rec: Record<I>, out: &mut dyn FnMut(Record<O>)) {
        let key = (self.key_fn)(&rec.payload);
        let state = self.state.entry(key.clone()).or_default();
        (self.process)(&key, state, rec, out);
    }
}

/// Wraps any operator with per-record instrumentation: processing
/// latency lands in a shared histogram, input/output record counts in
/// shared [`Throughput`]s.
///
/// The `Arc` handles are the registration surface — the embedding layer
/// hands clones of them to a metrics registry (`datacron-obs` sits
/// *above* this crate, so the operator itself stays registry-agnostic)
/// while the wrapped operator keeps recording into the same storage.
pub struct InstrumentOp<Op> {
    inner: Op,
    latency: Arc<LatencyHistogram>,
    records_in: Arc<Throughput>,
    records_out: Arc<Throughput>,
}

impl<Op> InstrumentOp<Op> {
    /// Instruments `inner` with fresh metric storage.
    pub fn new(inner: Op) -> Self {
        Self {
            inner,
            latency: Arc::new(LatencyHistogram::new()),
            records_in: Arc::new(Throughput::new()),
            records_out: Arc::new(Throughput::new()),
        }
    }

    /// Per-record processing latency (shared handle).
    pub fn latency(&self) -> Arc<LatencyHistogram> {
        Arc::clone(&self.latency)
    }

    /// Input record counter (shared handle).
    pub fn records_in(&self) -> Arc<Throughput> {
        Arc::clone(&self.records_in)
    }

    /// Output record counter (shared handle).
    pub fn records_out(&self) -> Arc<Throughput> {
        Arc::clone(&self.records_out)
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &Op {
        &self.inner
    }
}

impl<I, O, Op> Operator<I, O> for InstrumentOp<Op>
where
    Op: Operator<I, O>,
{
    fn on_record(&mut self, rec: Record<I>, out: &mut dyn FnMut(Record<O>)) {
        self.records_in.add(1);
        let outs = &self.records_out;
        let t = Stopwatch::start();
        self.inner.on_record(rec, &mut |o| {
            outs.add(1);
            out(o);
        });
        self.latency.observe(&t);
    }

    fn on_watermark(&mut self, wm: TimeMs, out: &mut dyn FnMut(Record<O>)) {
        let outs = &self.records_out;
        self.inner.on_watermark(wm, &mut |o| {
            outs.add(1);
            out(o);
        });
    }

    fn on_end(&mut self, out: &mut dyn FnMut(Record<O>)) {
        let outs = &self.records_out;
        self.inner.on_end(&mut |o| {
            outs.add(1);
            out(o);
        });
    }
}

/// Chains two operators into one.
pub struct Chain<A, B, M> {
    first: A,
    second: B,
    _mid: std::marker::PhantomData<fn() -> M>,
}

impl<A, B, M> Chain<A, B, M> {
    /// Composes `first` then `second`.
    pub fn new(first: A, second: B) -> Self {
        Self {
            first,
            second,
            _mid: std::marker::PhantomData,
        }
    }
}

impl<I, M, O, A, B> Operator<I, O> for Chain<A, B, M>
where
    A: Operator<I, M>,
    B: Operator<M, O>,
    M: Send,
{
    fn on_record(&mut self, rec: Record<I>, out: &mut dyn FnMut(Record<O>)) {
        let second = &mut self.second;
        self.first
            .on_record(rec, &mut |mid| second.on_record(mid, out));
    }

    fn on_watermark(&mut self, wm: TimeMs, out: &mut dyn FnMut(Record<O>)) {
        let second = &mut self.second;
        self.first
            .on_watermark(wm, &mut |mid| second.on_record(mid, out));
        second.on_watermark(wm, out);
    }

    fn on_end(&mut self, out: &mut dyn FnMut(Record<O>)) {
        let second = &mut self.second;
        self.first.on_end(&mut |mid| second.on_record(mid, out));
        second.on_end(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs(values: &[(i64, i32)]) -> Vec<Message<i32>> {
        let mut v: Vec<Message<i32>> = values
            .iter()
            .map(|&(t, x)| Message::record(TimeMs(t), x))
            .collect();
        v.push(Message::End);
        v
    }

    fn records<T: Copy>(out: &[Message<T>]) -> Vec<T> {
        out.iter()
            .filter_map(|m| m.as_record().map(|r| r.payload))
            .collect()
    }

    #[test]
    fn map_transforms_payloads() {
        let mut op = MapOp(|x: i32| x * 10);
        let out = op.run(msgs(&[(1, 1), (2, 2)]));
        assert_eq!(records(&out), vec![10, 20]);
        // Timestamps preserved; End forwarded.
        assert_eq!(out[0].as_record().unwrap().event_time, TimeMs(1));
        assert!(out.last().unwrap().is_end());
    }

    #[test]
    fn filter_drops() {
        let mut op = FilterOp(|x: &i32| *x % 2 == 0);
        let out = op.run(msgs(&[(1, 1), (2, 2), (3, 3), (4, 4)]));
        assert_eq!(records(&out), vec![2, 4]);
    }

    #[test]
    fn flat_map_expands() {
        let mut op = FlatMapOp(|x: i32| vec![x, -x]);
        let out = op.run(msgs(&[(1, 5)]));
        assert_eq!(records(&out), vec![5, -5]);
    }

    #[test]
    fn watermarks_forwarded() {
        let mut op = MapOp(|x: i32| x);
        let input = vec![
            Message::record(TimeMs(1), 7),
            Message::Watermark(TimeMs(1)),
            Message::End,
        ];
        let out = op.run(input);
        assert_eq!(out[1], Message::Watermark(TimeMs(1)));
    }

    #[test]
    fn keyed_process_keeps_per_key_state() {
        // Running count per key parity.
        let mut op = KeyedProcessOp::new(
            |x: &i32| x % 2,
            |_k: &i32,
             count: &mut i32,
             rec: Record<i32>,
             out: &mut dyn FnMut(Record<(i32, i32)>)| {
                *count += 1;
                out(Record::new(rec.event_time, (rec.payload, *count)));
            },
        );
        let out = op.run(msgs(&[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]));
        assert_eq!(records(&out), vec![(1, 1), (2, 1), (3, 2), (4, 2), (5, 3)]);
        assert_eq!(op.key_count(), 2);
    }

    #[test]
    fn instrument_counts_and_times() {
        let mut op = InstrumentOp::new(FlatMapOp(|x: i32| vec![x, -x]));
        let latency = op.latency();
        let ins = op.records_in();
        let outs = op.records_out();
        let out = op.run(msgs(&[(1, 5), (2, 7)]));
        assert_eq!(records(&out), vec![5, -5, 7, -7]);
        assert_eq!(ins.count(), 2);
        assert_eq!(outs.count(), 4);
        assert_eq!(latency.count(), 2);
        assert!(latency.quantile_us(1.0) <= latency.max_us());
    }

    #[test]
    fn chain_composes() {
        let mut op = Chain::new(MapOp(|x: i32| x + 1), FilterOp(|x: &i32| *x > 2));
        let out = op.run(msgs(&[(1, 0), (2, 2), (3, 9)]));
        assert_eq!(records(&out), vec![3, 10]);
    }
}
