//! Property tests: windowing agrees with brute-force grouping, and
//! watermark-driven firing never loses on-time data.

use datacron_geo::TimeMs;
use datacron_stream::{
    with_watermarks, BoundedOutOfOrderness, CountAny, KeyedWindowOp, Message, Operator, WindowSpec,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A disordered stream: events with bounded timestamp jitter.
fn arb_stream() -> impl Strategy<Value = Vec<(i64, u8)>> {
    prop::collection::vec((0i64..5_000, 0u8..4), 0..200)
}

proptest! {
    /// With watermark slack ≥ the maximum disorder, every record is
    /// assigned and the per-(key, window) counts equal brute force.
    #[test]
    fn window_counts_match_brute_force(
        mut events in arb_stream(),
        size in 50i64..500,
    ) {
        // Bounded disorder: sort, then jitter each timestamp by < slack.
        events.sort_by_key(|&(t, _)| t);
        let slack = 1_000i64;

        // Brute force per (key, window start).
        let mut expected: BTreeMap<(u8, i64), u64> = BTreeMap::new();
        for &(t, k) in &events {
            let start = t - t.rem_euclid(size);
            *expected.entry((k, start)).or_insert(0) += 1;
        }

        let src: Vec<(TimeMs, u8)> = events.iter().map(|&(t, k)| (TimeMs(t), k)).collect();
        let msgs: Vec<Message<u8>> =
            with_watermarks(src, BoundedOutOfOrderness::new(slack, 7)).collect();
        let mut op: KeyedWindowOp<u8, CountAny<u8>, _> =
            KeyedWindowOp::new(WindowSpec::tumbling(size), |k: &u8| *k);
        let out = op.run(msgs);

        let mut got: BTreeMap<(u8, i64), u64> = BTreeMap::new();
        for m in &out {
            if let Some(r) = m.as_record() {
                let prev = got.insert(
                    (r.payload.key, r.payload.window.start.millis()),
                    r.payload.value,
                );
                prop_assert!(prev.is_none(), "window fired twice");
            }
        }
        prop_assert_eq!(op.late_count(), 0, "no record may be late at this slack");
        prop_assert_eq!(got, expected);
    }

    /// With zero watermark slack on a disordered stream, records may drop
    /// as late — but fired counts plus late drops always account for every
    /// record, and no record is ever double-counted.
    #[test]
    fn conservation_under_late_drops(events in arb_stream(), size in 50i64..500) {
        let src: Vec<(TimeMs, u8)> = events.iter().map(|&(t, k)| (TimeMs(t), k)).collect();
        let msgs: Vec<Message<u8>> =
            with_watermarks(src, BoundedOutOfOrderness::new(0, 3)).collect();
        let mut op: KeyedWindowOp<u8, CountAny<u8>, _> =
            KeyedWindowOp::new(WindowSpec::tumbling(size), |k: &u8| *k);
        let out = op.run(msgs);
        let fired: u64 = out
            .iter()
            .filter_map(|m| m.as_record())
            .map(|r| r.payload.value)
            .sum();
        prop_assert_eq!(fired + op.late_count(), events.len() as u64);
    }

    /// Sliding windows: each record lands in exactly size/slide windows.
    #[test]
    fn sliding_assignment_count(
        t in 0i64..1_000_000,
        factor in 1i64..6,
        slide in 10i64..200,
    ) {
        let spec = WindowSpec::sliding(slide * factor, slide);
        let starts = spec.assign(TimeMs(t));
        prop_assert_eq!(starts.len() as i64, factor);
        for s in starts {
            prop_assert!(spec.window_at(s).contains(TimeMs(t)));
        }
    }
}
