//! Trajectory reconstruction and forecasting.
//!
//! datAcron's analytics forecast "future states of moving entities" in the
//! maritime (2D) and aviation (3D) domains. This crate implements:
//!
//! * [`reconstruct`] — turning a cleansed report stream back into
//!   per-object trajectories: gap segmentation and fixed-rate resampling;
//! * [`baseline`] — memoryless kinematic predictors: constant-velocity
//!   dead reckoning and constant turn rate;
//! * [`markov`] — a first-order grid Markov model learned from history;
//! * [`route`] — the route-network model: historical trajectories become
//!   cell-sequence routes; a live track matches routes through its current
//!   cell and is advanced along the best route at its own speed;
//! * [`vertical`] — the aviation vertical-profile predictor (climb/descent
//!   persistence with level-off), composed with any horizontal predictor;
//! * [`evaluate`] — the horizon-sweep harness behind experiments E6/E7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod evaluate;
pub mod kalman;
pub mod markov;
pub mod reconstruct;
pub mod route;
pub mod vertical;

pub use baseline::{ConstantTurnPredictor, DeadReckoningPredictor};
pub use evaluate::{evaluate_horizons, ErrorStats, HorizonReport};
pub use kalman::KalmanSmoother;
pub use markov::MarkovGridModel;
pub use reconstruct::{reconstruct_tracks, resample, segment_on_gaps};
pub use route::RouteModel;
pub use vertical::VerticalProfilePredictor;

use datacron_geo::{GeoPoint, TimeMs};
use datacron_model::TrajPoint;

/// A horizontal position predictor.
///
/// `history` is the object's track up to "now" (the last point's time);
/// `at` is a strictly later instant. `None` means the model cannot predict
/// (insufficient history or no matching knowledge).
pub trait Predictor {
    /// Predicts the horizontal position at `at`.
    fn predict(&self, history: &[TrajPoint], at: TimeMs) -> Option<GeoPoint>;

    /// A short display name for reports.
    fn name(&self) -> &'static str;
}
