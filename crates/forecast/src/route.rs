//! The route-network forecasting model.
//!
//! Historical trajectories are reduced to *routes*: deduplicated sequences
//! of grid cells with a per-route mean speed. A live track is matched to
//! routes passing through its current cell in a compatible direction; the
//! prediction advances along the best-supported route's polyline at the
//! track's own speed. Falls back to `None` off the learned network.

use crate::Predictor;
use datacron_geo::units::heading_delta_deg;
use datacron_geo::{GeoPoint, Grid, TimeMs};
use datacron_model::{TrajPoint, Trajectory};
use rustc_hash::FxHashMap;

/// One learned route.
#[derive(Debug, Clone)]
struct Route {
    /// Polyline of cell-entry positions along the training trajectory.
    path: Vec<GeoPoint>,
    /// Cell ids along the path (same indexing as `path`).
    cells: Vec<u64>,
    /// How many training trajectories contributed this route shape.
    support: u32,
}

/// The trained route network.
#[derive(Debug)]
pub struct RouteModel {
    grid: Grid,
    routes: Vec<Route>,
    /// cell → (route idx, position of the cell within the route).
    index: FxHashMap<u64, Vec<(u32, u32)>>,
}

impl RouteModel {
    /// Creates an untrained model over `grid`.
    pub fn new(grid: Grid) -> Self {
        Self {
            grid,
            routes: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// The deduplicated cell sequence of a trajectory, paired with the
    /// actual position at which each cell was first entered. Anchoring the
    /// polyline on real fixes (rather than cell centres) keeps the route's
    /// length true to the lane, so advancing along it does not lag.
    fn cell_sequence(&self, traj: &Trajectory) -> (Vec<u64>, Vec<GeoPoint>) {
        let mut cells: Vec<u64> = Vec::new();
        let mut entries: Vec<GeoPoint> = Vec::new();
        for p in traj.points() {
            let c = self.grid.cell_of_clamped(&p.position()).pack();
            if cells.last() != Some(&c) {
                cells.push(c);
                entries.push(p.position());
            }
        }
        (cells, entries)
    }

    /// Trains on one historical trajectory.
    pub fn train(&mut self, traj: &Trajectory) {
        let (cells, path) = self.cell_sequence(traj);
        if cells.len() < 3 {
            return;
        }
        // Merge with an existing identical route, else add a new one.
        if let Some(existing) = self.routes.iter_mut().find(|r| r.cells == cells) {
            existing.support += 1;
            return;
        }
        let idx = self.routes.len() as u32;
        for (pos, &c) in cells.iter().enumerate() {
            self.index.entry(c).or_default().push((idx, pos as u32));
        }
        self.routes.push(Route {
            path,
            cells,
            support: 1,
        });
    }

    /// Trains on many trajectories.
    pub fn train_all<'a>(&mut self, trajs: impl IntoIterator<Item = &'a Trajectory>) {
        for t in trajs {
            self.train(t);
        }
    }

    /// Number of learned routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Current speed estimate of a track (last step).
    fn track_speed(history: &[TrajPoint]) -> Option<f64> {
        let last = history.last()?;
        if history.len() >= 2 {
            let prev = &history[history.len() - 2];
            let dt = (last.time - prev.time) as f64 / 1000.0;
            if dt > 0.0 {
                return Some(prev.position().haversine_m(&last.position()) / dt);
            }
        }
        last.speed_mps.is_finite().then_some(last.speed_mps)
    }

    /// Advances `dist` metres along `route`'s polyline starting from the
    /// actual position `from` matched at waypoint index `pos`.
    fn advance(route: &Route, pos: usize, from: GeoPoint, dist: f64) -> GeoPoint {
        let mut current = from;
        let mut remaining = dist;
        let mut next = pos + 1;
        while remaining > 0.0 && next < route.path.len() {
            let target = route.path[next];
            let d = current.haversine_m(&target);
            if d <= remaining {
                current = target;
                remaining -= d;
                next += 1;
            } else {
                let bearing = current.bearing_deg(&target);
                current = current.destination(bearing, remaining);
                remaining = 0.0;
            }
        }
        if remaining > 0.0 {
            // Ran off the end of the route (training voyages are finite);
            // continue on the route's final bearing.
            let bearing =
                route.path[route.path.len() - 2].bearing_deg(&route.path[route.path.len() - 1]);
            current = current.destination(bearing, remaining);
        }
        current
    }

    /// Current heading estimate of a track.
    fn track_heading(history: &[TrajPoint]) -> Option<f64> {
        let last = history.last()?;
        if history.len() >= 2 {
            let prev = &history[history.len() - 2];
            if prev.position().haversine_m(&last.position()) > 1.0 {
                return Some(prev.position().bearing_deg(&last.position()));
            }
        }
        last.heading_deg.is_finite().then_some(last.heading_deg)
    }
}

impl Predictor for RouteModel {
    fn predict(&self, history: &[TrajPoint], at: TimeMs) -> Option<GeoPoint> {
        let last = history.last()?;
        let horizon_s = (at - last.time) as f64 / 1000.0;
        if horizon_s < 0.0 {
            return None;
        }
        let speed = Self::track_speed(history)?;
        // A moored or drifting vessel is not traversing a route; its
        // heading is noise and its departure time is unknowable from the
        // track alone. Route forecasts only apply to vessels under way.
        if speed < 0.5 {
            return None;
        }
        let heading = Self::track_heading(history)?;
        let cell = self.grid.cell_of_clamped(&last.position()).pack();
        let hits = self.index.get(&cell)?;

        // The track's recent distinct-cell suffix (up to 8 cells, newest
        // last) — the online counterpart of the training cell sequences.
        let mut suffix: Vec<u64> = Vec::with_capacity(8);
        for p in history.iter().rev() {
            let c = self.grid.cell_of_clamped(&p.position()).pack();
            if suffix.last() != Some(&c) {
                suffix.push(c);
                if suffix.len() == 8 {
                    break;
                }
            }
        }
        suffix.reverse();

        // Candidate routes through this cell, compatible in direction.
        // A candidate must reproduce at least `min_matched` trailing cells
        // of the track. With only one distinct cell of history nothing more
        // can be asked, but a track that has crossed cells must agree on
        // the previous cell too — a crossing lane that merely shares the
        // current cell (and passes the direction gate at an oblique angle)
        // otherwise captures the track and predicts kilometres off
        // cross-track.
        let min_matched = suffix.len().min(2);
        let mut cands: Vec<(&Route, usize, usize)> = Vec::new();
        let mut best_matched = 0usize;
        for &(ridx, pos) in hits {
            let route = &self.routes[ridx as usize];
            let pos = pos as usize;
            if pos + 1 >= route.path.len() {
                continue; // route ends here
            }
            let dir = route.path[pos].bearing_deg(&route.path[pos + 1]);
            let delta = heading_delta_deg(dir, heading).abs();
            if delta > 75.0 {
                continue;
            }
            // Longest match between `suffix` (ending at the current cell)
            // and the route cells ending at `pos`.
            let mut matched = 0usize;
            while matched < suffix.len()
                && matched <= pos
                && route.cells[pos - matched] == suffix[suffix.len() - 1 - matched]
            {
                matched += 1;
            }
            if matched < min_matched {
                continue;
            }
            best_matched = best_matched.max(matched);
            cands.push((route, pos, matched));
        }
        // Keep only routes that explain the track's recent path as well as
        // the best one does; the vessel's history cannot tell them apart.
        cands.retain(|&(_, _, m)| m == best_matched);
        // Representative route for the consensus stretch: highest support.
        cands.sort_by_key(|&(r, _, _)| std::cmp::Reverse(r.support));
        let &(best_route, best_pos, _) = cands.first()?;

        // Advance along every surviving candidate. Where they all share a
        // corridor the endpoints agree and any of them is the prediction.
        // Where they *branch* within the horizon the track's history
        // cannot say which branch the vessel will take — committing to one
        // risks the full cross-track divergence. Instead, follow the
        // consensus corridor up to the branch point, then continue on the
        // incoming bearing (dead-reckoning from the junction): no worse
        // than dead reckoning where the network is ambiguous, and still
        // ahead of it on every turn the candidates agree on.
        let dist = speed * horizon_s;
        let from = last.position();
        let spread = |d: f64| -> f64 {
            let pts: Vec<GeoPoint> = cands
                .iter()
                .map(|&(r, p, _)| Self::advance(r, p, from, d))
                .collect();
            let mut worst = 0.0f64;
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    worst = worst.max(pts[i].haversine_m(&pts[j]));
                }
            }
            worst
        };
        const AGREE_M: f64 = 2_500.0;
        if cands.len() == 1 || spread(dist) <= AGREE_M {
            return Some(Self::advance(best_route, best_pos, from, dist));
        }
        // Binary-search the longest consensus distance.
        let (mut lo, mut hi) = (0.0f64, dist);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if spread(mid) <= AGREE_M {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let junction = Self::advance(best_route, best_pos, from, lo);
        let approach = Self::advance(best_route, best_pos, from, (lo - 200.0).max(0.0));
        let bearing = if approach.haversine_m(&junction) > 1.0 {
            approach.bearing_deg(&junction)
        } else {
            heading
        };
        Some(junction.destination(bearing, dist - lo))
    }

    fn name(&self) -> &'static str {
        "route-network"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::BoundingBox;
    use datacron_model::ObjectId;

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(23.0, 36.0, 27.0, 40.0), 0.05).unwrap()
    }

    /// An L-shaped voyage: east then north.
    fn l_shaped(speed: f64) -> Trajectory {
        let mut pts = Vec::new();
        let mut pos = GeoPoint::new(23.2, 37.0);
        let mut t = 0i64;
        for _ in 0..40 {
            pts.push(TrajPoint::new2(TimeMs(t), pos, speed, 90.0));
            pos = pos.destination(90.0, speed * 60.0);
            t += 60_000;
        }
        for _ in 0..40 {
            pts.push(TrajPoint::new2(TimeMs(t), pos, speed, 0.0));
            pos = pos.destination(0.0, speed * 60.0);
            t += 60_000;
        }
        Trajectory::from_points(ObjectId(1), pts)
    }

    #[test]
    fn follows_the_turn_where_dead_reckoning_cannot() {
        let mut model = RouteModel::new(grid());
        for _ in 0..3 {
            model.train(&l_shaped(8.0));
        }
        let full = l_shaped(8.0);
        // History: 30 min — still on the eastbound leg (turn at t=40 min).
        let hist = &full.points()[..30];
        // Predict 30 min ahead: truth is on the northbound leg.
        let at = TimeMs(60 * 60_000);
        let truth = full.position_at(at).unwrap();
        let route_pred = model.predict(hist, at).unwrap();
        let dr_pred = crate::baseline::DeadReckoningPredictor
            .predict(hist, at)
            .unwrap();
        let e_route = route_pred.haversine_m(&truth);
        let e_dr = dr_pred.haversine_m(&truth);
        assert!(
            e_route < e_dr / 2.0,
            "route {e_route:.0} m vs dead-reckoning {e_dr:.0} m"
        );
    }

    #[test]
    fn direction_gate_rejects_reverse_traffic() {
        let mut model = RouteModel::new(grid());
        model.train(&l_shaped(8.0));
        // A track moving WEST through the eastbound corridor.
        let pts: Vec<TrajPoint> = (0..5)
            .map(|i| {
                TrajPoint::new2(
                    TimeMs(i * 60_000),
                    GeoPoint::new(23.8 - 0.01 * i as f64, 37.0),
                    8.0,
                    270.0,
                )
            })
            .collect();
        assert!(model.predict(&pts, TimeMs(30 * 60_000)).is_none());
    }

    #[test]
    fn off_network_returns_none() {
        let mut model = RouteModel::new(grid());
        model.train(&l_shaped(8.0));
        let stranger = vec![
            TrajPoint::new2(TimeMs(0), GeoPoint::new(26.5, 39.5), 5.0, 90.0),
            TrajPoint::new2(TimeMs(60_000), GeoPoint::new(26.51, 39.5), 5.0, 90.0),
        ];
        assert!(model.predict(&stranger, TimeMs(600_000)).is_none());
    }

    #[test]
    fn repeated_training_merges_routes() {
        let mut model = RouteModel::new(grid());
        for _ in 0..5 {
            model.train(&l_shaped(8.0));
        }
        assert_eq!(model.route_count(), 1);
    }

    #[test]
    fn short_trajectories_ignored() {
        let mut model = RouteModel::new(grid());
        let tiny = Trajectory::from_points(
            ObjectId(2),
            vec![TrajPoint::new2(
                TimeMs(0),
                GeoPoint::new(24.0, 37.0),
                5.0,
                0.0,
            )],
        );
        model.train(&tiny);
        assert_eq!(model.route_count(), 0);
    }

    #[test]
    fn prediction_advances_with_horizon() {
        let mut model = RouteModel::new(grid());
        model.train(&l_shaped(8.0));
        let full = l_shaped(8.0);
        let hist = &full.points()[..10];
        let now = hist.last().unwrap();
        let p10 = model.predict(hist, now.time + 10 * 60_000).unwrap();
        let p30 = model.predict(hist, now.time + 30 * 60_000).unwrap();
        let d10 = now.position().haversine_m(&p10);
        let d30 = now.position().haversine_m(&p30);
        assert!(d30 > d10 * 2.0, "d10 {d10:.0} d30 {d30:.0}");
    }
}
