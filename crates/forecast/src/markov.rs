//! A first-order grid Markov model over movement cells.
//!
//! Training counts transitions between grid cells at a fixed time step;
//! prediction propagates the cell distribution forward and returns its
//! probability-weighted centroid. Data-driven but memoryless beyond one
//! cell — the middle ground between dead reckoning and the route model.

use crate::reconstruct::resample;
use crate::Predictor;
use datacron_geo::{CellId, GeoPoint, Grid, TimeMs};
use datacron_model::{TrajPoint, Trajectory};
use rustc_hash::FxHashMap;

/// The trained model.
#[derive(Debug)]
pub struct MarkovGridModel {
    grid: Grid,
    step_ms: i64,
    /// cell → (next cell → count).
    transitions: FxHashMap<u64, FxHashMap<u64, u32>>,
}

impl MarkovGridModel {
    /// Creates an untrained model over `grid` with transition step
    /// `step_ms`.
    pub fn new(grid: Grid, step_ms: i64) -> Self {
        assert!(step_ms > 0);
        Self {
            grid,
            step_ms,
            transitions: FxHashMap::default(),
        }
    }

    /// Trains on one historical trajectory (resampled to the step
    /// internally).
    pub fn train(&mut self, traj: &Trajectory) {
        let rs = resample(traj, self.step_ms);
        let cells: Vec<CellId> = rs
            .points()
            .iter()
            .map(|p| self.grid.cell_of_clamped(&p.position()))
            .collect();
        for w in cells.windows(2) {
            *self
                .transitions
                .entry(w[0].pack())
                .or_default()
                .entry(w[1].pack())
                .or_insert(0) += 1;
        }
    }

    /// Trains on many trajectories.
    pub fn train_all<'a>(&mut self, trajs: impl IntoIterator<Item = &'a Trajectory>) {
        for t in trajs {
            self.train(t);
        }
    }

    /// Number of cells with outgoing transitions.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Maximum number of cells kept in the propagated distribution.
    const MAX_SUPPORT: usize = 64;
}

impl Predictor for MarkovGridModel {
    /// Propagates the full cell distribution `steps` transitions forward
    /// (pruned to the [`MarkovGridModel::MAX_SUPPORT`] most probable cells)
    /// and returns the probability-weighted centroid. Walking only the
    /// argmax chain would stall on the self-transitions that encode dwell
    /// time, so the expectation is the right point estimate here.
    fn predict(&self, history: &[TrajPoint], at: TimeMs) -> Option<GeoPoint> {
        let last = history.last()?;
        let horizon = at - last.time;
        if horizon < 0 {
            return None;
        }
        let steps = (horizon as f64 / self.step_ms as f64).round() as usize;
        if steps == 0 {
            return Some(last.position());
        }
        let start = self.grid.cell_of_clamped(&last.position()).pack();
        if !self.transitions.contains_key(&start) {
            return None; // unseen state: no opinion
        }
        let mut dist: FxHashMap<u64, f64> = FxHashMap::default();
        dist.insert(start, 1.0);
        for _ in 0..steps {
            let mut next_dist: FxHashMap<u64, f64> = FxHashMap::default();
            for (&cell, &p) in &dist {
                match self.transitions.get(&cell) {
                    Some(nexts) => {
                        let total: u32 = nexts.values().sum();
                        for (&nc, &c) in nexts {
                            *next_dist.entry(nc).or_insert(0.0) +=
                                p * f64::from(c) / f64::from(total);
                        }
                    }
                    // Absorbing unseen state: mass stays put.
                    None => *next_dist.entry(cell).or_insert(0.0) += p,
                }
            }
            if next_dist.len() > Self::MAX_SUPPORT {
                let mut entries: Vec<(u64, f64)> = next_dist.into_iter().collect();
                entries.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                entries.truncate(Self::MAX_SUPPORT);
                let norm: f64 = entries.iter().map(|(_, p)| p).sum();
                next_dist = entries.into_iter().map(|(c, p)| (c, p / norm)).collect();
            }
            dist = next_dist;
        }
        let mut lon = 0.0;
        let mut lat = 0.0;
        let mut total = 0.0;
        for (&cell, &p) in &dist {
            let center = self.grid.cell_center(CellId::unpack(cell));
            lon += center.lon * p;
            lat += center.lat * p;
            total += p;
        }
        (total > 0.0).then(|| GeoPoint::new(lon / total, lat / total))
    }

    fn name(&self) -> &'static str {
        "markov-grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::BoundingBox;
    use datacron_model::ObjectId;

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(23.0, 36.0, 26.0, 39.0), 0.05).unwrap()
    }

    fn eastbound(lat: f64) -> Trajectory {
        let pts: Vec<TrajPoint> = (0..60)
            .map(|i| {
                TrajPoint::new2(
                    TimeMs(i * 60_000),
                    GeoPoint::new(23.2 + 0.01 * i as f64, lat),
                    9.0,
                    90.0,
                )
            })
            .collect();
        Trajectory::from_points(ObjectId(1), pts)
    }

    #[test]
    fn learns_and_follows_a_corridor() {
        let mut m = MarkovGridModel::new(grid(), 60_000);
        for _ in 0..5 {
            m.train(&eastbound(37.0));
        }
        assert!(m.state_count() > 5);
        let hist = eastbound(37.0);
        let prefix = &hist.points()[..10];
        let truth = hist.position_at(TimeMs(30 * 60_000)).unwrap();
        let p = m.predict(prefix, TimeMs(30 * 60_000)).unwrap();
        // Within ~1.5 cells of truth.
        assert!(
            p.haversine_m(&truth) < 9_000.0,
            "err {}",
            p.haversine_m(&truth)
        );
    }

    #[test]
    fn unseen_state_returns_none() {
        let mut m = MarkovGridModel::new(grid(), 60_000);
        m.train(&eastbound(37.0));
        // A track far from the corridor.
        let stranger = vec![TrajPoint::new2(
            TimeMs(0),
            GeoPoint::new(25.5, 38.5),
            5.0,
            0.0,
        )];
        assert!(m.predict(&stranger, TimeMs(600_000)).is_none());
    }

    #[test]
    fn zero_horizon_returns_current_position() {
        let mut m = MarkovGridModel::new(grid(), 60_000);
        m.train(&eastbound(37.0));
        let hist = eastbound(37.0);
        let last = *hist.points().last().unwrap();
        let p = m.predict(hist.points(), last.time + 1).unwrap();
        assert!(p.haversine_m(&last.position()) < 1.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut m = MarkovGridModel::new(grid(), 60_000);
        m.train(&eastbound(37.0));
        m.train(&eastbound(37.0));
        let hist = eastbound(37.0);
        let a = m.predict(&hist.points()[..5], TimeMs(20 * 60_000));
        let b = m.predict(&hist.points()[..5], TimeMs(20 * 60_000));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_history_none() {
        let m = MarkovGridModel::new(grid(), 60_000);
        assert!(m.predict(&[], TimeMs(1000)).is_none());
    }

    #[test]
    fn train_all_counts_everything() {
        let mut m = MarkovGridModel::new(grid(), 60_000);
        let ts = vec![eastbound(37.0), eastbound(37.5)];
        m.train_all(&ts);
        assert!(m.state_count() > 10);
    }
}
