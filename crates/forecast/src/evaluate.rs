//! The horizon-sweep evaluation harness (experiments E6/E7).

use crate::Predictor;
use datacron_model::Trajectory;
use serde::{Deserialize, Serialize};

/// Error distribution at one horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Evaluation cases attempted.
    pub cases: usize,
    /// Cases where the model produced a prediction.
    pub predicted: usize,
    /// Median error over predicted cases, metres.
    pub median_m: f64,
    /// 90th-percentile error, metres.
    pub p90_m: f64,
    /// Mean error, metres.
    pub mean_m: f64,
}

/// One row of the horizon sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HorizonReport {
    /// Predictor name.
    pub model: String,
    /// Horizon in minutes.
    pub horizon_min: i64,
    /// Error statistics.
    pub stats: ErrorStats,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Evaluates a predictor on true trajectories at several horizons.
///
/// For each trajectory and each evaluation anchor (every `anchor_step_ms`
/// along the track, provided enough history and future exist), the model
/// sees the prefix up to the anchor and predicts `horizon` ahead; the error
/// is the great-circle distance to the trajectory's true interpolated
/// position.
pub fn evaluate_horizons(
    model: &dyn Predictor,
    trajectories: &[Trajectory],
    horizons_min: &[i64],
    anchor_step_ms: i64,
    min_history_ms: i64,
) -> Vec<HorizonReport> {
    let mut out = Vec::with_capacity(horizons_min.len());
    for &h_min in horizons_min {
        let horizon_ms = h_min * 60_000;
        let mut errors: Vec<f64> = Vec::new();
        let mut cases = 0usize;
        for traj in trajectories {
            let pts = traj.points();
            if pts.len() < 3 {
                continue;
            }
            let t0 = pts[0].time;
            let t_end = pts[pts.len() - 1].time;
            let mut anchor = t0 + min_history_ms;
            while anchor + horizon_ms <= t_end {
                let prefix_end = pts.partition_point(|p| p.time <= anchor);
                if prefix_end >= 2 {
                    cases += 1;
                    let target = anchor + horizon_ms;
                    if let (Some(pred), Some(truth)) = (
                        model.predict(&pts[..prefix_end], target),
                        traj.position_at(target),
                    ) {
                        errors.push(pred.haversine_m(&truth));
                    }
                }
                anchor = anchor + anchor_step_ms;
            }
        }
        errors.sort_by(|a, b| a.total_cmp(b));
        let stats = ErrorStats {
            cases,
            predicted: errors.len(),
            median_m: percentile(&errors, 0.5),
            p90_m: percentile(&errors, 0.9),
            mean_m: if errors.is_empty() {
                f64::NAN
            } else {
                errors.iter().sum::<f64>() / errors.len() as f64
            },
        };
        out.push(HorizonReport {
            model: model.name().to_string(),
            horizon_min: h_min,
            stats,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::DeadReckoningPredictor;
    use datacron_geo::{GeoPoint, TimeMs};
    use datacron_model::{ObjectId, TrajPoint};

    fn straight(n: i64) -> Trajectory {
        let start = GeoPoint::new(24.0, 37.0);
        let pts: Vec<TrajPoint> = (0..n)
            .map(|i| {
                TrajPoint::new2(
                    TimeMs(i * 60_000),
                    start.destination(90.0, 6.0 * 60.0 * i as f64),
                    6.0,
                    90.0,
                )
            })
            .collect();
        Trajectory::from_points(ObjectId(1), pts)
    }

    #[test]
    fn dead_reckoning_near_zero_error_on_straight_line() {
        let trajs = vec![straight(120)];
        let reports = evaluate_horizons(
            &DeadReckoningPredictor,
            &trajs,
            &[5, 20],
            10 * 60_000,
            10 * 60_000,
        );
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.stats.cases > 0);
            assert_eq!(r.stats.cases, r.stats.predicted);
            assert!(r.stats.median_m < 50.0, "median {}", r.stats.median_m);
            assert!(r.stats.p90_m >= r.stats.median_m);
        }
    }

    #[test]
    fn error_grows_with_horizon_on_curved_track() {
        // A slowly curving track defeats dead reckoning more at longer
        // horizons.
        let mut pos = GeoPoint::new(24.0, 37.0);
        let mut heading = 90.0;
        let pts: Vec<TrajPoint> = (0..180)
            .map(|i| {
                let p = TrajPoint::new2(TimeMs(i * 60_000), pos, 6.0, heading);
                heading = datacron_geo::units::normalize_deg(heading + 0.5);
                pos = pos.destination(heading, 360.0);
                p
            })
            .collect();
        let trajs = vec![Trajectory::from_points(ObjectId(1), pts)];
        let reports = evaluate_horizons(
            &DeadReckoningPredictor,
            &trajs,
            &[5, 30, 60],
            15 * 60_000,
            10 * 60_000,
        );
        assert!(reports[0].stats.median_m < reports[1].stats.median_m);
        assert!(reports[1].stats.median_m < reports[2].stats.median_m);
    }

    #[test]
    fn short_trajectories_produce_no_cases() {
        let trajs = vec![straight(2)];
        let reports = evaluate_horizons(&DeadReckoningPredictor, &trajs, &[60], 60_000, 60_000);
        assert_eq!(reports[0].stats.cases, 0);
        assert!(reports[0].stats.median_m.is_nan());
    }

    #[test]
    fn percentile_edges() {
        assert!(percentile(&[], 0.5).is_nan());
        assert_eq!(percentile(&[1.0], 0.5), 1.0);
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }
}
