//! Aviation vertical-profile prediction.

use datacron_geo::TimeMs;
use datacron_model::TrajPoint;

/// Predicts altitude by persisting the observed vertical rate, clamped to
/// a plausible altitude band and levelled off at the inferred cruise
/// altitude (the maximum altitude seen so far, when climbing).
#[derive(Debug, Clone, Copy)]
pub struct VerticalProfilePredictor {
    /// Floor altitude (field elevation), metres.
    pub min_alt_m: f64,
    /// Ceiling altitude, metres.
    pub max_alt_m: f64,
}

impl Default for VerticalProfilePredictor {
    fn default() -> Self {
        Self {
            min_alt_m: 0.0,
            max_alt_m: 13_000.0,
        }
    }
}

impl VerticalProfilePredictor {
    /// Predicts altitude at `at` from the track history; `None` without at
    /// least two fixes.
    pub fn predict_alt(&self, history: &[TrajPoint], at: TimeMs) -> Option<f64> {
        if history.len() < 2 {
            return history.last().map(|p| p.alt_m);
        }
        let last = history[history.len() - 1];
        let prev = history[history.len() - 2];
        let dt = (last.time - prev.time) as f64 / 1000.0;
        if dt <= 0.0 {
            return Some(last.alt_m);
        }
        let vrate = (last.alt_m - prev.alt_m) / dt;
        let horizon_s = (at - last.time) as f64 / 1000.0;
        if horizon_s < 0.0 {
            return None;
        }
        let mut alt = last.alt_m + vrate * horizon_s;
        if vrate > 0.0 {
            // Climbing: level off at the highest plausible cruise — the max
            // altitude seen across history plus a one-step extrapolation
            // margin, capped by the ceiling.
            let seen_max = history.iter().map(|p| p.alt_m).fold(f64::MIN, f64::max);
            let cruise_guess = (seen_max + vrate * 120.0).min(self.max_alt_m);
            alt = alt.min(cruise_guess);
        }
        Some(alt.clamp(self.min_alt_m, self.max_alt_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn pt(t_s: i64, alt: f64) -> TrajPoint {
        TrajPoint {
            time: TimeMs(t_s * 1000),
            lon: 10.0,
            lat: 45.0,
            alt_m: alt,
            speed_mps: 220.0,
            heading_deg: 90.0,
        }
    }

    #[test]
    fn level_flight_stays_level() {
        let hist = vec![pt(0, 10_000.0), pt(10, 10_000.0)];
        let alt = VerticalProfilePredictor::default()
            .predict_alt(&hist, TimeMs(600_000))
            .unwrap();
        assert!((alt - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn climb_persists_then_levels() {
        // Climbing 10 m/s from 5000 m.
        let hist = vec![pt(0, 4_900.0), pt(10, 5_000.0)];
        let p = VerticalProfilePredictor::default();
        let soon = p.predict_alt(&hist, TimeMs(40_000)).unwrap();
        assert!((soon - 5_300.0).abs() < 1.0, "soon = {soon}");
        // Far ahead: clamped at the level-off guess, not 5_000 + 10*3600.
        let far = p.predict_alt(&hist, TimeMs(3_610_000)).unwrap();
        assert!(far <= 5_000.0 + 10.0 * 120.0 + 1.0, "far = {far}");
    }

    #[test]
    fn descent_clamps_at_floor() {
        let hist = vec![pt(0, 1_000.0), pt(10, 900.0)];
        let alt = VerticalProfilePredictor::default()
            .predict_alt(&hist, TimeMs(600_000))
            .unwrap();
        assert_eq!(alt, 0.0);
    }

    #[test]
    fn single_fix_returns_current() {
        let hist = vec![pt(0, 3_000.0)];
        let alt = VerticalProfilePredictor::default()
            .predict_alt(&hist, TimeMs(60_000))
            .unwrap();
        assert_eq!(alt, 3_000.0);
    }

    #[test]
    fn empty_history_none() {
        assert!(VerticalProfilePredictor::default()
            .predict_alt(&[], TimeMs(0))
            .is_none());
    }

    #[test]
    fn past_target_rejected() {
        let hist = vec![pt(0, 1_000.0), pt(10, 1_100.0)];
        assert!(VerticalProfilePredictor::default()
            .predict_alt(&hist, TimeMs(5_000))
            .is_none());
    }
}
