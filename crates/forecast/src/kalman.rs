//! A constant-velocity Kalman filter for trajectory smoothing.
//!
//! Trajectory *reconstruction* in datAcron is more than resampling: raw
//! fixes carry GPS noise that downstream analytics (speed thresholds, turn
//! detection) are sensitive to. This filter estimates position+velocity in
//! a local tangent plane per object and emits smoothed fixes.
//!
//! State: `[x, y, vx, vy]` metres / metres-per-second in an
//! equirectangular plane anchored at the first fix (adequate for regional
//! tracks). Process noise is parameterised by a white acceleration
//! density; measurement noise by the GPS sigma.

use datacron_geo::{GeoPoint, TimeMs, EARTH_RADIUS_M};
use datacron_model::TrajPoint;

/// A 4-state constant-velocity Kalman filter over one track.
#[derive(Debug, Clone)]
pub struct KalmanSmoother {
    /// Measurement noise sigma, metres.
    pub meas_sigma_m: f64,
    /// Process (acceleration) noise density, m/s².
    pub accel_sigma: f64,
    anchor: Option<GeoPoint>,
    cos_lat: f64,
    /// State `[x, y, vx, vy]`.
    x: [f64; 4],
    /// Covariance (row-major 4×4).
    p: [[f64; 4]; 4],
    last_t: TimeMs,
    initialized: bool,
}

impl KalmanSmoother {
    /// Creates a smoother with the given noise parameters.
    pub fn new(meas_sigma_m: f64, accel_sigma: f64) -> Self {
        Self {
            meas_sigma_m,
            accel_sigma,
            anchor: None,
            cos_lat: 1.0,
            x: [0.0; 4],
            p: [[0.0; 4]; 4],
            last_t: TimeMs::MIN,
            initialized: false,
        }
    }

    /// Defaults tuned for AIS (12 m GPS noise, gentle manoeuvres).
    pub fn ais() -> Self {
        Self::new(12.0, 0.05)
    }

    fn to_plane(&self, p: &GeoPoint) -> (f64, f64) {
        let a = self.anchor.expect("anchored");
        (
            (p.lon - a.lon).to_radians() * self.cos_lat * EARTH_RADIUS_M,
            (p.lat - a.lat).to_radians() * EARTH_RADIUS_M,
        )
    }

    fn to_geo(&self, x: f64, y: f64) -> GeoPoint {
        let a = self.anchor.expect("anchored");
        GeoPoint::new(
            a.lon + (x / (self.cos_lat * EARTH_RADIUS_M)).to_degrees(),
            a.lat + (y / EARTH_RADIUS_M).to_degrees(),
        )
    }

    /// Processes one fix, returning the smoothed fix. Out-of-order fixes
    /// return `None`.
    pub fn update(&mut self, fix: &TrajPoint) -> Option<TrajPoint> {
        let pos = fix.position();
        if !self.initialized {
            self.anchor = Some(pos);
            self.cos_lat = pos.lat.to_radians().cos().max(0.01);
            self.x = [0.0, 0.0, 0.0, 0.0];
            let r2 = self.meas_sigma_m * self.meas_sigma_m;
            self.p = [[0.0; 4]; 4];
            self.p[0][0] = r2;
            self.p[1][1] = r2;
            self.p[2][2] = 100.0; // generous initial velocity uncertainty
            self.p[3][3] = 100.0;
            self.last_t = fix.time;
            self.initialized = true;
            return Some(*fix);
        }
        if fix.time <= self.last_t {
            return None;
        }
        let dt = (fix.time - self.last_t) as f64 / 1000.0;
        self.last_t = fix.time;

        // Predict: x' = F x, P' = F P Fᵀ + Q.
        let (x0, y0, vx, vy) = (self.x[0], self.x[1], self.x[2], self.x[3]);
        self.x = [x0 + vx * dt, y0 + vy * dt, vx, vy];
        // F P Fᵀ expanded for the CV model.
        let mut p = self.p;
        for i in 0..2 {
            let v = i + 2;
            // Row/col updates: position rows pick up velocity covariances.
            let pii = p[i][i] + dt * (p[v][i] + p[i][v]) + dt * dt * p[v][v];
            let piv = p[i][v] + dt * p[v][v];
            p[i][i] = pii;
            p[i][v] = piv;
            p[v][i] = piv;
        }
        // Cross terms x-y are tiny for independent axes; keep them zeroed.
        let q = self.accel_sigma * self.accel_sigma;
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;
        let dt4 = dt3 * dt;
        for i in 0..2 {
            let v = i + 2;
            p[i][i] += q * dt4 / 4.0;
            p[i][v] += q * dt3 / 2.0;
            p[v][i] += q * dt3 / 2.0;
            p[v][v] += q * dt2;
        }

        // Update with the measured position (H = [I2 0]).
        let (zx, zy) = self.to_plane(&pos);
        let r = self.meas_sigma_m * self.meas_sigma_m;
        for (axis, z) in [(0usize, zx), (1usize, zy)] {
            let v = axis + 2;
            let s = p[axis][axis] + r;
            let k_pos = p[axis][axis] / s;
            let k_vel = p[v][axis] / s;
            let innov = z - self.x[axis];
            self.x[axis] += k_pos * innov;
            self.x[v] += k_vel * innov;
            // Joseph-free covariance update for the 2×2 block.
            let p_aa = (1.0 - k_pos) * p[axis][axis];
            let p_av = (1.0 - k_pos) * p[axis][v];
            let p_vv = p[v][v] - k_vel * p[axis][v];
            p[axis][axis] = p_aa;
            p[axis][v] = p_av;
            p[v][axis] = p_av;
            p[v][v] = p_vv;
        }
        self.p = p;

        let smoothed = self.to_geo(self.x[0], self.x[1]);
        let speed = (self.x[2] * self.x[2] + self.x[3] * self.x[3]).sqrt();
        let heading = if speed > 0.1 {
            datacron_geo::units::normalize_deg(self.x[2].atan2(self.x[3]).to_degrees())
        } else {
            fix.heading_deg
        };
        Some(TrajPoint {
            time: fix.time,
            lon: smoothed.lon,
            lat: smoothed.lat,
            alt_m: fix.alt_m,
            speed_mps: speed,
            heading_deg: heading,
        })
    }

    /// The current velocity estimate `(vx_east, vy_north)` m/s.
    pub fn velocity(&self) -> (f64, f64) {
        (self.x[2], self.x[3])
    }

    /// Smooths a whole track.
    pub fn smooth_track(
        points: &[TrajPoint],
        meas_sigma_m: f64,
        accel_sigma: f64,
    ) -> Vec<TrajPoint> {
        let mut kf = KalmanSmoother::new(meas_sigma_m, accel_sigma);
        points.iter().filter_map(|p| kf.update(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A straight track with Gaussian position noise.
    fn noisy_track(n: usize, sigma_m: f64, seed: u64) -> (Vec<TrajPoint>, Vec<GeoPoint>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = GeoPoint::new(24.0, 37.0);
        let speed = 6.0;
        let mut noisy = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n {
            let true_pos = start.destination(90.0, speed * 10.0 * i as f64);
            truth.push(true_pos);
            let bearing: f64 = rng.gen_range(0.0..360.0);
            let d: f64 = rng.gen_range(0.0..2.0 * sigma_m);
            let obs = true_pos.destination(bearing, d);
            noisy.push(TrajPoint::new2(TimeMs(i as i64 * 10_000), obs, speed, 90.0));
        }
        (noisy, truth)
    }

    #[test]
    fn smoothing_reduces_position_error() {
        let (noisy, truth) = noisy_track(120, 25.0, 42);
        // Low acceleration noise: the test track is straight, so the filter
        // may trust the CV model heavily.
        let smoothed = KalmanSmoother::smooth_track(&noisy, 25.0, 0.01);
        assert_eq!(smoothed.len(), noisy.len());
        // Compare mean error over the second half (after convergence).
        let half = noisy.len() / 2;
        let err = |pts: &[TrajPoint]| -> f64 {
            pts[half..]
                .iter()
                .zip(&truth[half..])
                .map(|(p, t)| p.position().haversine_m(t))
                .sum::<f64>()
                / (pts.len() - half) as f64
        };
        let raw_err = err(&noisy);
        let kf_err = err(&smoothed);
        assert!(
            kf_err < raw_err * 0.7,
            "kalman {kf_err:.1} m vs raw {raw_err:.1} m"
        );
    }

    #[test]
    fn velocity_estimate_converges() {
        let (noisy, _) = noisy_track(120, 15.0, 7);
        let mut kf = KalmanSmoother::ais();
        for p in &noisy {
            kf.update(p);
        }
        let (vx, vy) = kf.velocity();
        // True velocity: 6 m/s due east.
        assert!((vx - 6.0).abs() < 0.5, "vx = {vx}");
        assert!(vy.abs() < 0.5, "vy = {vy}");
    }

    #[test]
    fn smoothed_speed_tracks_truth() {
        let (noisy, _) = noisy_track(120, 15.0, 9);
        let smoothed = KalmanSmoother::smooth_track(&noisy, 15.0, 0.05);
        // The instantaneous estimate has a steady-state sd of ~0.25 m/s
        // (measured over 40 seeds), so a single-point ±0.5 assertion fails
        // for ~5% of seeds. Judge the converged mean instead (sd ~0.016).
        let half = smoothed.len() / 2;
        let mean_speed = smoothed[half..].iter().map(|p| p.speed_mps).sum::<f64>()
            / (smoothed.len() - half) as f64;
        assert!((mean_speed - 6.0).abs() < 0.2, "v = {mean_speed}");
        let last = smoothed.last().unwrap();
        assert!(
            datacron_geo::units::heading_delta_deg(last.heading_deg, 90.0).abs() < 10.0,
            "heading = {}",
            last.heading_deg
        );
    }

    #[test]
    fn out_of_order_fix_rejected() {
        let mut kf = KalmanSmoother::ais();
        let p0 = TrajPoint::new2(TimeMs(10_000), GeoPoint::new(24.0, 37.0), 5.0, 90.0);
        let p1 = TrajPoint::new2(TimeMs(5_000), GeoPoint::new(24.1, 37.0), 5.0, 90.0);
        assert!(kf.update(&p0).is_some());
        assert!(kf.update(&p1).is_none());
    }

    #[test]
    fn first_fix_passes_through() {
        let mut kf = KalmanSmoother::ais();
        let p0 = TrajPoint::new2(TimeMs(0), GeoPoint::new(24.0, 37.0), 5.0, 90.0);
        let out = kf.update(&p0).unwrap();
        assert_eq!(out.position(), p0.position());
    }

    #[test]
    fn stationary_target_stays_put() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = GeoPoint::new(24.0, 37.0);
        let mut kf = KalmanSmoother::ais();
        let mut last = None;
        for i in 0..100 {
            let obs = center.destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..20.0));
            last = kf.update(&TrajPoint::new2(TimeMs(i * 10_000), obs, 0.0, f64::NAN));
        }
        let p = last.unwrap();
        assert!(p.position().haversine_m(&center) < 10.0);
        assert!(p.speed_mps < 0.5, "phantom speed {}", p.speed_mps);
    }
}
