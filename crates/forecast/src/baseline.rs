//! Memoryless kinematic baselines.

use crate::Predictor;
use datacron_geo::units::heading_delta_deg;
use datacron_geo::{GeoPoint, TimeMs};
use datacron_model::TrajPoint;

/// Constant-velocity dead reckoning: continue at the last observed speed
/// and course.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadReckoningPredictor;

impl DeadReckoningPredictor {
    /// Effective speed/heading of the track's last step, falling back to the
    /// reported values when the step is degenerate.
    fn last_motion(history: &[TrajPoint]) -> Option<(GeoPoint, TimeMs, f64, f64)> {
        let last = history.last()?;
        let pos = last.position();
        if history.len() >= 2 {
            let prev = &history[history.len() - 2];
            let dt_s = (last.time - prev.time) as f64 / 1000.0;
            if dt_s > 0.0 {
                let d = prev.position().haversine_m(&pos);
                let speed = d / dt_s;
                let heading = if d > 1.0 {
                    prev.position().bearing_deg(&pos)
                } else if last.heading_deg.is_finite() {
                    last.heading_deg
                } else {
                    0.0
                };
                return Some((pos, last.time, speed, heading));
            }
        }
        let speed = if last.speed_mps.is_finite() {
            last.speed_mps
        } else {
            return None;
        };
        let heading = if last.heading_deg.is_finite() {
            last.heading_deg
        } else {
            return None;
        };
        Some((pos, last.time, speed, heading))
    }
}

impl Predictor for DeadReckoningPredictor {
    fn predict(&self, history: &[TrajPoint], at: TimeMs) -> Option<GeoPoint> {
        let (pos, now, speed, heading) = Self::last_motion(history)?;
        let dt_s = (at - now) as f64 / 1000.0;
        if dt_s < 0.0 {
            return None;
        }
        Some(pos.destination(heading, speed * dt_s))
    }

    fn name(&self) -> &'static str {
        "dead-reckoning"
    }
}

/// Constant-turn-rate prediction: estimate the turn rate from the last two
/// steps and integrate it forward in short arcs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantTurnPredictor;

impl Predictor for ConstantTurnPredictor {
    fn predict(&self, history: &[TrajPoint], at: TimeMs) -> Option<GeoPoint> {
        if history.len() < 3 {
            return DeadReckoningPredictor.predict(history, at);
        }
        let n = history.len();
        let (a, b, c) = (&history[n - 3], &history[n - 2], &history[n - 1]);
        let h1 = a.position().bearing_deg(&b.position());
        let h2 = b.position().bearing_deg(&c.position());
        let dt1 = (b.time - a.time) as f64 / 1000.0;
        let dt2 = (c.time - b.time) as f64 / 1000.0;
        if dt1 <= 0.0 || dt2 <= 0.0 {
            return DeadReckoningPredictor.predict(history, at);
        }
        let turn_rate = heading_delta_deg(h2, h1) / dt2; // deg/s
        let speed = b.position().haversine_m(&c.position()) / dt2;
        let mut pos = c.position();
        let mut heading = h2;
        let mut remaining_s = (at - c.time) as f64 / 1000.0;
        if remaining_s < 0.0 {
            return None;
        }
        // Integrate in ≤30 s arcs so the curvature shows up.
        while remaining_s > 0.0 {
            let step = remaining_s.min(30.0);
            heading = datacron_geo::units::normalize_deg(heading + turn_rate * step);
            pos = pos.destination(heading, speed * step);
            remaining_s -= step;
        }
        Some(pos)
    }

    fn name(&self) -> &'static str {
        "constant-turn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_model::ObjectId;
    use datacron_model::Trajectory;

    fn straight_track(n: usize, speed: f64) -> Vec<TrajPoint> {
        let start = GeoPoint::new(24.0, 37.0);
        (0..n)
            .map(|i| {
                let pos = start.destination(90.0, speed * 10.0 * i as f64);
                TrajPoint::new2(TimeMs(i as i64 * 10_000), pos, speed, 90.0)
            })
            .collect()
    }

    fn circular_track(n: usize) -> Vec<TrajPoint> {
        // 0.5 deg/s turn, 6 m/s, 10 s steps.
        let mut pos = GeoPoint::new(24.0, 37.0);
        let mut heading = 0.0;
        let mut out = Vec::new();
        for i in 0..n {
            out.push(TrajPoint::new2(
                TimeMs(i as i64 * 10_000),
                pos,
                6.0,
                heading,
            ));
            heading = datacron_geo::units::normalize_deg(heading + 5.0);
            pos = pos.destination(heading, 60.0);
        }
        out
    }

    #[test]
    fn dead_reckoning_on_straight_track_is_exact() {
        let track = straight_track(10, 6.0);
        let truth_at_120s = GeoPoint::new(24.0, 37.0).destination(90.0, 6.0 * 120.0);
        let p = DeadReckoningPredictor
            .predict(&track, TimeMs(120_000))
            .unwrap();
        assert!(p.haversine_m(&truth_at_120s) < 5.0);
    }

    #[test]
    fn dead_reckoning_single_point_uses_reported_kinematics() {
        let track = vec![TrajPoint::new2(
            TimeMs(0),
            GeoPoint::new(24.0, 37.0),
            10.0,
            0.0,
        )];
        let p = DeadReckoningPredictor
            .predict(&track, TimeMs(60_000))
            .unwrap();
        let want = GeoPoint::new(24.0, 37.0).destination(0.0, 600.0);
        assert!(p.haversine_m(&want) < 1.0);
    }

    #[test]
    fn dead_reckoning_needs_kinematics_or_two_points() {
        let mut p0 = TrajPoint::new2(TimeMs(0), GeoPoint::new(24.0, 37.0), f64::NAN, f64::NAN);
        p0.speed_mps = f64::NAN;
        assert!(DeadReckoningPredictor
            .predict(&[p0], TimeMs(1000))
            .is_none());
        assert!(DeadReckoningPredictor.predict(&[], TimeMs(1000)).is_none());
    }

    #[test]
    fn past_target_is_rejected() {
        let track = straight_track(5, 6.0);
        assert!(DeadReckoningPredictor.predict(&track, TimeMs(0)).is_none());
    }

    #[test]
    fn constant_turn_beats_dead_reckoning_on_circle() {
        let track = circular_track(40);
        let history = &track[..20];
        // Truth: continue the circle to step 30 (t = 300 s).
        let truth = track[30].position();
        let at = TimeMs(300_000);
        let ct = ConstantTurnPredictor.predict(history, at).unwrap();
        let dr = DeadReckoningPredictor.predict(history, at).unwrap();
        let e_ct = ct.haversine_m(&truth);
        let e_dr = dr.haversine_m(&truth);
        assert!(
            e_ct < e_dr * 0.6,
            "constant-turn {e_ct:.0} m vs dead-reckoning {e_dr:.0} m"
        );
    }

    #[test]
    fn constant_turn_falls_back_on_short_history() {
        let track = straight_track(2, 6.0);
        let p = ConstantTurnPredictor.predict(&track, TimeMs(60_000));
        assert!(p.is_some());
    }

    #[test]
    fn names_differ() {
        assert_ne!(DeadReckoningPredictor.name(), ConstantTurnPredictor.name());
    }

    #[test]
    fn works_with_trajectory_slices() {
        let tr = Trajectory::from_points(ObjectId(1), straight_track(10, 5.0));
        let p = DeadReckoningPredictor.predict(tr.points(), TimeMs(150_000));
        assert!(p.is_some());
    }
}
