//! Trajectory reconstruction: gap segmentation and resampling.

use datacron_geo::position_at_time;
use datacron_model::{ObjectId, PositionReport, TrajPoint, Trajectory};
use rustc_hash::FxHashMap;

/// Groups reports by object and splits each object's track at silences
/// longer than `gap_ms`. Reports are sorted per object; duplicates drop.
pub fn reconstruct_tracks(reports: &[PositionReport], gap_ms: i64) -> Vec<Trajectory> {
    let mut per_object: FxHashMap<ObjectId, Vec<TrajPoint>> = FxHashMap::default();
    for r in reports {
        per_object
            .entry(r.object)
            .or_default()
            .push(TrajPoint::from(r));
    }
    let mut out = Vec::new();
    let mut objects: Vec<ObjectId> = per_object.keys().copied().collect();
    objects.sort_unstable();
    for obj in objects {
        let mut pts = per_object.remove(&obj).expect("key exists");
        pts.sort_by_key(|p| p.time);
        pts.dedup_by_key(|p| p.time);
        out.extend(segment_on_gaps(obj, &pts, gap_ms));
    }
    out
}

/// Splits a time-ordered point sequence into trajectories at gaps longer
/// than `gap_ms`.
pub fn segment_on_gaps(object: ObjectId, points: &[TrajPoint], gap_ms: i64) -> Vec<Trajectory> {
    let mut out = Vec::new();
    let mut current: Vec<TrajPoint> = Vec::new();
    for p in points {
        if let Some(last) = current.last() {
            if p.time - last.time > gap_ms {
                out.push(Trajectory::from_points(
                    object,
                    std::mem::take(&mut current),
                ));
            }
        }
        current.push(*p);
    }
    if !current.is_empty() {
        out.push(Trajectory::from_points(object, current));
    }
    out
}

/// Resamples a trajectory to a fixed `interval_ms`, interpolating positions
/// (and blending altitude/speed linearly). The first sample is at the first
/// fix; sampling stops at the last fix.
pub fn resample(traj: &Trajectory, interval_ms: i64) -> Trajectory {
    assert!(interval_ms > 0, "non-positive resample interval");
    let pts = traj.points();
    if pts.len() < 2 {
        return traj.clone();
    }
    let start = pts[0].time;
    let end = pts[pts.len() - 1].time;
    let mut out = Vec::with_capacity(((end - start) / interval_ms + 1) as usize);
    let mut seg = 0usize;
    let mut t = start;
    while t <= end {
        while seg + 1 < pts.len() && pts[seg + 1].time <= t {
            seg += 1;
        }
        let p = if seg + 1 >= pts.len() || pts[seg].time == t {
            pts[seg]
        } else {
            let (a, b) = (&pts[seg], &pts[seg + 1]);
            let f = (t - a.time) as f64 / (b.time - a.time) as f64;
            let pos = position_at_time((&a.position(), a.time), (&b.position(), b.time), t);
            TrajPoint {
                time: t,
                lon: pos.lon,
                lat: pos.lat,
                alt_m: a.alt_m + (b.alt_m - a.alt_m) * f,
                speed_mps: if a.speed_mps.is_finite() && b.speed_mps.is_finite() {
                    a.speed_mps + (b.speed_mps - a.speed_mps) * f
                } else {
                    a.speed_mps
                },
                heading_deg: a.heading_deg,
            }
        };
        out.push(TrajPoint { time: t, ..p });
        t = t + interval_ms;
    }
    Trajectory::from_points(traj.object, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacron_geo::{GeoPoint, TimeMs};
    use datacron_model::{NavStatus, SourceId};

    fn rep(obj: u64, t_s: i64, lon: f64) -> PositionReport {
        PositionReport::maritime(
            ObjectId(obj),
            TimeMs(t_s * 1000),
            GeoPoint::new(lon, 37.0),
            5.0,
            90.0,
            SourceId::AIS_TERRESTRIAL,
            NavStatus::UnderWay,
        )
    }

    #[test]
    fn groups_by_object_and_sorts() {
        let reports = vec![
            rep(2, 10, 24.1),
            rep(1, 20, 24.2),
            rep(1, 10, 24.0),
            rep(2, 20, 24.3),
        ];
        let tracks = reconstruct_tracks(&reports, 600_000);
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].object, ObjectId(1));
        assert_eq!(tracks[0].points()[0].time, TimeMs(10_000));
        assert_eq!(tracks[1].object, ObjectId(2));
    }

    #[test]
    fn splits_on_gap() {
        let reports = vec![
            rep(1, 0, 24.0),
            rep(1, 60, 24.01),
            rep(1, 2000, 24.5),
            rep(1, 2060, 24.51),
        ];
        let tracks = reconstruct_tracks(&reports, 10 * 60_000);
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].len(), 2);
        assert_eq!(tracks[1].len(), 2);
    }

    #[test]
    fn no_gap_single_track() {
        let reports: Vec<_> = (0..10)
            .map(|i| rep(1, i * 60, 24.0 + 0.01 * i as f64))
            .collect();
        let tracks = reconstruct_tracks(&reports, 10 * 60_000);
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].len(), 10);
    }

    #[test]
    fn duplicate_timestamps_dropped() {
        let reports = vec![rep(1, 10, 24.0), rep(1, 10, 24.9), rep(1, 20, 24.1)];
        let tracks = reconstruct_tracks(&reports, 600_000);
        assert_eq!(tracks[0].len(), 2);
    }

    #[test]
    fn resample_uniform_spacing() {
        let reports: Vec<_> = (0..5)
            .map(|i| rep(1, i * 100, 24.0 + 0.1 * i as f64))
            .collect();
        let tracks = reconstruct_tracks(&reports, 600_000);
        let rs = resample(&tracks[0], 25_000);
        // 0..=400 s at 25 s: 17 samples.
        assert_eq!(rs.len(), 17);
        for w in rs.points().windows(2) {
            assert_eq!(w[1].time - w[0].time, 25_000);
        }
        // Interpolated positions fall between neighbours.
        let p = rs.points()[1]; // t=25s → lon ≈ 24.025
        assert!((p.lon - 24.025).abs() < 1e-3, "lon = {}", p.lon);
    }

    #[test]
    fn resample_short_tracks_unchanged() {
        let tracks = reconstruct_tracks(&[rep(1, 0, 24.0)], 600_000);
        let rs = resample(&tracks[0], 10_000);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn resample_blends_altitude() {
        let mut a = TrajPoint::from(&rep(1, 0, 24.0));
        let mut b = TrajPoint::from(&rep(1, 100, 24.1));
        a.alt_m = 0.0;
        b.alt_m = 1000.0;
        let tr = Trajectory::from_points(ObjectId(1), vec![a, b]);
        let rs = resample(&tr, 50_000);
        assert_eq!(rs.len(), 3);
        assert!((rs.points()[1].alt_m - 500.0).abs() < 1e-9);
    }

    #[test]
    fn segment_preserves_total_points() {
        let pts: Vec<TrajPoint> = (0..20)
            .map(|i| TrajPoint::from(&rep(1, i * if i % 7 == 0 { 1000 } else { 30 }, 24.0)))
            .collect();
        let mut sorted = pts.clone();
        sorted.sort_by_key(|p| p.time);
        sorted.dedup_by_key(|p| p.time);
        let total: usize = segment_on_gaps(ObjectId(1), &sorted, 5 * 60_000)
            .iter()
            .map(|t| t.len())
            .sum();
        assert_eq!(total, sorted.len());
    }
}
