//! Compact, dependency-free binary codec for WAL records and snapshots.
//!
//! The wire format is non-self-describing and fixed by convention:
//!
//! - integers are fixed-width little-endian (`u8`/`u16`/`u32`/`u64`/`i64`);
//! - `f64` is its IEEE-754 bit pattern as a `u64` (NaN payloads survive);
//! - `bool` is one byte, `0` or `1`;
//! - strings and byte slices are a `u64` length prefix followed by raw
//!   bytes; sequences and maps are a `u64` element count followed by the
//!   elements in order;
//! - `Option<T>` is a tag byte (`0` = `None`, `1` = `Some`) then the value;
//! - enums are a `u32` variant index chosen by the hand-written codec.
//!
//! Encoders push onto a [`Writer`]; decoders pull from a [`Reader`] that
//! bounds-checks every read, so truncated or bit-flipped input yields a
//! [`BinError`], never a panic or an out-of-bounds slice. Length prefixes
//! are sanity-checked against the bytes actually remaining, so a corrupted
//! length cannot trigger a pathological allocation. Both ends must agree
//! on the type — there are no field names or type markers in the stream,
//! which is exactly why every durable artifact carrying one of these
//! payloads also carries a CRC and a format version.

use std::fmt;

/// Decode (or encode-invariant) failure. Carries a human-readable reason;
/// callers treat any `BinError` as "this record/snapshot is unusable".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError(pub String);

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary codec error: {}", self.0)
    }
}

impl std::error::Error for BinError {}

impl BinError {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

/// Codec result.
pub type Result<T> = std::result::Result<T, BinError>;

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` by IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// `usize` travels as `u64` so the format is identical across targets.
    pub fn usize(&mut self, v: usize) {
        // lint:allow(truncation) usize is at most 64 bits on every
        // supported target, so this widens; it is the one sanctioned
        // usize->u64 conversion in the format layer.
        self.u64(v as u64);
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Sequence element count; the caller then encodes each element.
    pub fn seq_len(&mut self, n: usize) {
        self.usize(n);
    }

    /// Option tag; the caller encodes the value after a `true` tag.
    pub fn opt_tag(&mut self, present: bool) {
        self.u8(u8::from(present));
    }

    /// Enum variant index.
    pub fn variant(&mut self, idx: u32) {
        self.u32(idx);
    }
}

/// Bounds-checked decode cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Asserts the input was fully consumed — trailing bytes mean the
    /// payload does not match the expected schema.
    pub fn finish(self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(BinError::msg(format!(
                "{} trailing bytes after value",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(BinError::msg(format!(
                "unexpected end of input: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Exactly `N` bytes as a fixed array (for the `from_le_bytes`
    /// decoders below; the copy cannot fail once `take` has bounds-checked
    /// the read).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// `u16`, little-endian.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// `i64`, little-endian.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// `f64` by IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// `bool` from one byte; any value other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(BinError::msg(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// `usize` from its `u64` wire form.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| BinError::msg(format!("usize overflow: {v}")))
    }

    /// Decodes a length prefix, rejecting values that could not possibly
    /// be satisfied by the remaining input (every element is at least one
    /// byte on the wire, so `len > remaining` is always corrupt).
    pub fn seq_len(&mut self) -> Result<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(BinError::msg(format!(
                "implausible length {n} with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.seq_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?).map_err(|e| BinError::msg(format!("invalid utf-8: {e}")))
    }

    /// Option tag byte; `true` means a value follows.
    pub fn opt_tag(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(BinError::msg(format!("invalid option tag {b:#04x}"))),
        }
    }

    /// Enum variant index.
    pub fn variant(&mut self) -> Result<u32> {
        self.u32()
    }
}

/// Copies the `N` bytes at `off` out of a header buffer, for the
/// `from_le_bytes` decoders in `wal` and `snapshot`. Offsets and widths
/// are compile-time constants at every call site, inside fixed-size
/// headers that were filled by `read_exact`, so the slice arithmetic
/// cannot go out of bounds at runtime.
pub(crate) fn field<const N: usize>(buf: &[u8], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[off..off + N]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded() -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 7);
        w.i64(-42);
        w.f64(std::f64::consts::PI);
        w.bool(true);
        w.str("datacron");
        w.bytes(&[1, 2, 3]);
        w.opt_tag(false);
        w.opt_tag(true);
        w.u32(99);
        w.variant(2);
        w.into_bytes()
    }

    #[test]
    fn primitives_round_trip() {
        let bytes = encoded();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert!(r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "datacron");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert!(!r.opt_tag().unwrap());
        assert!(r.opt_tag().unwrap());
        assert_eq!(r.u32().unwrap(), 99);
        assert_eq!(r.variant().unwrap(), 2);
        r.finish().unwrap();
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        w.f64(weird);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = r.f64().unwrap();
        assert!(back.is_nan());
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_at_every_cut_errors_not_panics() {
        let bytes = encoded();
        for cut in 0..bytes.len() {
            let slice = &bytes[..cut];
            let mut r = Reader::new(slice);
            let res: Result<()> = (|| {
                r.u8()?;
                r.u16()?;
                r.u32()?;
                r.u64()?;
                r.i64()?;
                r.f64()?;
                r.bool()?;
                r.string()?;
                r.bytes()?;
                r.opt_tag()?;
                r.opt_tag()?;
                r.u32()?;
                r.variant()?;
                Ok(())
            })();
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u32(7);
        w.u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 7);
        assert!(r.finish().is_err());
    }

    #[test]
    fn implausible_length_is_rejected_before_allocating() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.bytes().is_err());
        let mut r = Reader::new(&bytes);
        assert!(r.seq_len().is_err());
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let bytes = [7u8];
        let mut r = Reader::new(&bytes);
        assert!(r.bool().is_err());
        let mut r = Reader::new(&bytes);
        assert!(r.opt_tag().is_err());
    }

    #[test]
    fn empty_input_finishes_clean() {
        Reader::new(&[]).finish().unwrap();
    }
}
