//! Point-in-time snapshot files with atomic installation and corruption
//! fallback.
//!
//! A snapshot is the serialized query-visible state of the pipeline as of
//! a WAL position. Files are named `snap-<wal_seq:016x>.snap`, where
//! `wal_seq` is the sequence number of the first WAL record **not**
//! included — recovery loads the newest valid snapshot and replays the
//! log from exactly that seq. Format:
//!
//! ```text
//! [magic "DSNP"][version: u32 LE][wal_seq: u64 LE][len: u64 LE][crc: u32 LE][payload]
//! ```
//!
//! Installation is atomic: write to a temp file, fsync it, rename into
//! place, fsync the directory. A crash mid-snapshot therefore leaves the
//! previous snapshot intact; a bit-flipped snapshot fails its CRC at load
//! and the store silently falls back to the next-newest one.

use crate::binser;
use crate::crc::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DSNP";
const VERSION: u32 = 1;
/// Snapshots kept after a successful save (newest plus one fallback).
const KEEP: usize = 2;

/// A directory of snapshot files.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snap_path(dir: &Path, wal_seq: u64) -> PathBuf {
    dir.join(format!("snap-{wal_seq:016x}.snap"))
}

fn parse_snap_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// All snapshot positions on disk, newest first.
    pub fn list(&self) -> io::Result<Vec<u64>> {
        let mut seqs: Vec<u64> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_snap_name(e.file_name().to_str()?))
            .collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        Ok(seqs)
    }

    /// Atomically installs a snapshot taken at WAL position `wal_seq`,
    /// then prunes all but the newest [`KEEP`] snapshots.
    pub fn save(&self, wal_seq: u64, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("snap-{wal_seq:016x}.tmp"));
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&wal_seq.to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&crc32(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, snap_path(&self.dir, wal_seq))?;
        // fsync the directory so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.prune()?;
        Ok(())
    }

    fn prune(&self) -> io::Result<()> {
        for seq in self.list()?.into_iter().skip(KEEP) {
            let _ = fs::remove_file(snap_path(&self.dir, seq));
        }
        Ok(())
    }

    /// Loads one snapshot, verifying magic, version, declared length, and
    /// checksum. `Err` here means "this file is unusable", not "abort".
    fn load(&self, wal_seq: u64) -> io::Result<Vec<u8>> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut f = File::open(snap_path(&self.dir, wal_seq))?;
        let mut header = [0u8; 4 + 4 + 8 + 8 + 4];
        f.read_exact(&mut header)
            .map_err(|e| bad(format!("short snapshot header: {e}")))?;
        if &header[0..4] != MAGIC {
            return Err(bad("bad snapshot magic".into()));
        }
        let version = u32::from_le_bytes(binser::field(&header, 4));
        if version != VERSION {
            return Err(bad(format!("unsupported snapshot version {version}")));
        }
        let stored_seq = u64::from_le_bytes(binser::field(&header, 8));
        if stored_seq != wal_seq {
            return Err(bad(format!(
                "snapshot seq mismatch: file says {stored_seq}, name says {wal_seq}"
            )));
        }
        let len = u64::from_le_bytes(binser::field(&header, 16));
        let crc = u32::from_le_bytes(binser::field(&header, 24));
        let mut payload = Vec::new();
        f.read_to_end(&mut payload)?;
        if payload.len() as u64 != len {
            return Err(bad(format!(
                "snapshot length mismatch: declared {len}, found {}",
                payload.len()
            )));
        }
        if crc32(&payload) != crc {
            return Err(bad("snapshot checksum mismatch".into()));
        }
        Ok(payload)
    }

    /// The newest snapshot that verifies, as `(wal_seq, payload)`; corrupt
    /// or torn snapshot files are skipped (never a panic), and `None`
    /// means recovery must replay the WAL from its start.
    pub fn load_latest(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        for seq in self.list()? {
            match self.load(seq) {
                Ok(payload) => return Ok(Some((seq, payload))),
                Err(_) => continue, // fall back to the next-newest
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    #[test]
    fn save_load_round_trips() {
        let dir = TempDir::new("snap-roundtrip");
        let s = SnapshotStore::open(dir.path()).unwrap();
        assert_eq!(s.load_latest().unwrap(), None);
        s.save(42, b"state-at-42").unwrap();
        let (seq, payload) = s.load_latest().unwrap().expect("snapshot");
        assert_eq!(seq, 42);
        assert_eq!(payload, b"state-at-42");
    }

    #[test]
    fn newest_wins_and_pruning_bounds_disk() {
        let dir = TempDir::new("snap-prune");
        let s = SnapshotStore::open(dir.path()).unwrap();
        for seq in [10u64, 20, 30, 40] {
            s.save(seq, format!("state-{seq}").as_bytes()).unwrap();
        }
        let (seq, payload) = s.load_latest().unwrap().unwrap();
        assert_eq!(seq, 40);
        assert_eq!(payload, b"state-40");
        assert_eq!(s.list().unwrap(), vec![40, 30], "older snapshots pruned");
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = TempDir::new("snap-fallback");
        let s = SnapshotStore::open(dir.path()).unwrap();
        s.save(10, b"good-old").unwrap();
        s.save(20, b"good-new").unwrap();
        // Flip a payload bit in the newest.
        let path = snap_path(dir.path(), 20);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let (seq, payload) = s.load_latest().unwrap().expect("fallback");
        assert_eq!(seq, 10);
        assert_eq!(payload, b"good-old");
    }

    #[test]
    fn truncated_snapshot_is_skipped() {
        let dir = TempDir::new("snap-truncated");
        let s = SnapshotStore::open(dir.path()).unwrap();
        s.save(5, b"intact").unwrap();
        s.save(9, &vec![7u8; 256]).unwrap();
        let path = snap_path(dir.path(), 9);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (seq, _) = s.load_latest().unwrap().expect("older survives");
        assert_eq!(seq, 5);
    }

    #[test]
    fn garbage_magic_is_skipped() {
        let dir = TempDir::new("snap-magic");
        let s = SnapshotStore::open(dir.path()).unwrap();
        fs::write(snap_path(dir.path(), 99), b"not a snapshot at all").unwrap();
        assert_eq!(s.load_latest().unwrap(), None);
        s.save(100, b"real").unwrap();
        assert_eq!(s.load_latest().unwrap().unwrap().0, 100);
    }
}
