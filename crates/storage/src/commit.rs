//! Group commit: a shared durable-LSN watermark plus the dedicated
//! fsync thread that advances it.
//!
//! # Why a thread
//!
//! Under [`FsyncPolicy::Always`](crate::FsyncPolicy::Always) the naive
//! path fsyncs inside `Wal::append`, so every concurrent ingest pays a
//! full device flush and the caller's lock is held across it. Group
//! commit splits the ack from the flush: `append` writes the record and
//! *requests* durability for its LSN, the fsync thread flushes the
//! active segment once per batch, and every request at or below the new
//! watermark completes with that single fsync. Throughput scales with
//! concurrency while the guarantee — an acknowledged record is on disk —
//! is unchanged.
//!
//! # LSN semantics
//!
//! Positions are counts, matching the replication code: `durable_lsn ==
//! n` means records `0..n` are durable. An append that got sequence
//! `seq` is durable once `durable_lsn >= seq + 1`.
//!
//! # The segment-roll invariant
//!
//! The thread only ever fsyncs the *current* active segment (a cloned
//! fd handed over by the WAL). That is sufficient because sealing a
//! segment fsyncs it inline before the new file becomes active — so at
//! the instant the thread samples `(requested, file)` under the lock,
//! every record below `requested` is either already durable (sealed
//! segments) or sits in `file`.
//!
//! # Poisoning (fsyncgate)
//!
//! After a failed fsync the kernel may have dropped the dirty pages
//! while clearing the error, so a retried fsync can "succeed" without
//! the data ever reaching disk. The first fsync failure therefore
//! poisons the log permanently: pending and future waiters fail with
//! the original error, appends and syncs refuse to run, and no fsync is
//! ever retried.

use datacron_stream::clock::Stopwatch;
use datacron_stream::LatencyHistogram;
use std::fs::File;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Completion callback for a deferred durability request: `Ok(lsn)`
/// once the watermark covers the request, `Err(reason)` if the log was
/// poisoned first. Fired exactly once, never under the commit lock.
pub type AckCallback = Box<dyn FnOnce(Result<u64, String>) + Send>;

/// Mutable state behind the commit lock.
struct CommitState {
    /// Highest LSN anyone has asked to make durable.
    requested: u64,
    /// Cloned fd of the active segment — what the thread fsyncs.
    file: Option<Arc<File>>,
    /// Deferred acks, each waiting for `durable >= lsn`.
    waiters: Vec<(u64, AckCallback)>,
    /// First fsync failure, verbatim; set once, never cleared.
    poisoned: Option<String>,
    /// Thread exit requested (pending work is drained first).
    shutdown: bool,
    /// Crash-simulation exit: the thread returns immediately, flushing
    /// nothing — what a `kill -9` would leave behind.
    abandon: bool,
    /// Test hook: fail this many upcoming fsyncs.
    fail_fsyncs: u32,
}

/// Shared group-commit core: the durable watermark, the waiter list,
/// and the poison flag. One per [`Wal`](crate::Wal); the fsync thread
/// and every appender hold an `Arc` to it.
pub struct GroupCommit {
    state: Mutex<CommitState>,
    /// Wakes the fsync thread when `requested` advances or on shutdown.
    work_cv: Condvar,
    /// Wakes blocking [`GroupCommit::wait_durable`] callers.
    durable_cv: Condvar,
    /// The watermark: records `0..durable` are on disk. Written under
    /// the state lock; read lock-free.
    durable: AtomicU64,
    /// Records made durable per fsync batch (the group size).
    group_size: Arc<LatencyHistogram>,
    batches: AtomicU64,
    waiters_total: AtomicU64,
    /// Shared with the WAL so thread-issued fsyncs land in the same
    /// latency histogram as inline ones.
    fsync_lat: Arc<LatencyHistogram>,
}

impl std::fmt::Debug for GroupCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit")
            .field("durable", &self.durable_lsn())
            .field("batches", &self.batches())
            .finish_non_exhaustive()
    }
}

impl GroupCommit {
    /// A fresh core whose watermark starts at `durable`: everything
    /// recovered from disk counts as durable.
    pub(crate) fn new(fsync_lat: Arc<LatencyHistogram>, durable: u64) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CommitState {
                requested: durable,
                file: None,
                waiters: Vec::new(),
                poisoned: None,
                shutdown: false,
                abandon: false,
                fail_fsyncs: 0,
            }),
            work_cv: Condvar::new(),
            durable_cv: Condvar::new(),
            durable: AtomicU64::new(durable),
            group_size: Arc::new(LatencyHistogram::new()),
            batches: AtomicU64::new(0),
            waiters_total: AtomicU64::new(0),
            fsync_lat,
        })
    }

    /// Locks the state, absorbing poisoning from a panicked peer — the
    /// state stays coherent because every mutation completes before the
    /// guard drops.
    fn lock(&self) -> MutexGuard<'_, CommitState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The durability watermark: records `0..lsn` are on disk.
    pub fn durable_lsn(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// fsync batches completed (inline or by the thread).
    pub fn batches(&self) -> u64 {
        // ordering: pure statistic; readers only want an eventual count.
        self.batches.load(Ordering::Relaxed)
    }

    /// Deferred-ack waiters ever registered.
    pub fn waiters_registered(&self) -> u64 {
        // ordering: pure statistic; readers only want an eventual count.
        self.waiters_total.load(Ordering::Relaxed)
    }

    /// Waiters currently parked (a point-in-time gauge).
    pub fn pending_waiters(&self) -> usize {
        self.lock().waiters.len()
    }

    /// Shared handle to the group-size histogram (records per fsync
    /// batch), the form a metrics registry registers.
    pub fn group_size_shared(&self) -> Arc<LatencyHistogram> {
        Arc::clone(&self.group_size)
    }

    /// `Err` with the original fsync error once the log is poisoned.
    pub fn check_poison(&self) -> io::Result<()> {
        match &self.lock().poisoned {
            Some(msg) => Err(io::Error::other(msg.clone())),
            None => Ok(()),
        }
    }

    /// Hands the thread a cloned fd for the (new) active segment. Must
    /// be called under the same serialization that orders appends (the
    /// caller's storage lock), before any append to the new file asks
    /// for durability.
    pub(crate) fn set_active_file(&self, file: File) {
        self.lock().file = Some(Arc::new(file));
    }

    /// Asks the thread to make records `0..lsn` durable. Returns
    /// immediately; pair with [`GroupCommit::ack_when`] or
    /// [`GroupCommit::wait_durable`].
    pub fn request(&self, lsn: u64) {
        let mut g = self.lock();
        if lsn > g.requested {
            // Only signal when the thread could be idle: if `requested`
            // was already ahead of the watermark the thread is settling
            // or fsyncing and will observe the new value on its own —
            // waking it per append just churns the hot commit lock.
            let idle = g.requested == self.durable.load(Ordering::Acquire);
            g.requested = lsn;
            if idle {
                self.work_cv.notify_one();
            }
        }
    }

    /// Registers `cb` to fire once `durable_lsn >= lsn` (or fail on
    /// poison). Fires inline — outside the lock — when the condition
    /// already holds.
    pub fn ack_when(&self, lsn: u64, cb: AckCallback) {
        let mut g = self.lock();
        if let Some(msg) = g.poisoned.clone() {
            drop(g);
            cb(Err(msg));
            return;
        }
        if self.durable.load(Ordering::Acquire) >= lsn {
            drop(g);
            cb(Ok(lsn));
            return;
        }
        // ordering: pure statistic; readers only want an eventual count.
        self.waiters_total.fetch_add(1, Ordering::Relaxed);
        g.waiters.push((lsn, cb));
    }

    /// Blocks until records `0..lsn` are durable (requesting the work
    /// if nobody has yet). The synchronous-append path.
    pub fn wait_durable(&self, lsn: u64) -> io::Result<u64> {
        let mut g = self.lock();
        if lsn > g.requested {
            let idle = g.requested == self.durable.load(Ordering::Acquire);
            g.requested = lsn;
            if idle {
                self.work_cv.notify_one();
            }
        }
        loop {
            if let Some(msg) = &g.poisoned {
                return Err(io::Error::other(msg.clone()));
            }
            let d = self.durable.load(Ordering::Acquire);
            if d >= lsn {
                return Ok(d);
            }
            g = self.durable_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Advances the watermark to `lsn` (monotonically) after a
    /// successful fsync covering it, waking and completing every waiter
    /// the new watermark covers. Callbacks fire after the lock drops.
    pub(crate) fn complete_through(&self, lsn: u64) {
        let mut due: Vec<(u64, AckCallback)> = Vec::new();
        {
            let mut g = self.lock();
            if g.poisoned.is_some() {
                return;
            }
            let prev = self.durable.load(Ordering::Acquire);
            if lsn <= prev {
                return;
            }
            self.durable.store(lsn, Ordering::Release);
            self.group_size.record_us(lsn - prev);
            // ordering: pure statistic; readers only want an eventual count.
            self.batches.fetch_add(1, Ordering::Relaxed);
            let mut i = 0;
            while i < g.waiters.len() {
                if g.waiters[i].0 <= lsn {
                    due.push(g.waiters.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        // Notify after the lock drops so woken waiters can take it
        // immediately instead of piling up behind the notifier. Safe:
        // the watermark was published under the same lock the waiters'
        // predicate check holds.
        self.durable_cv.notify_all();
        for (w_lsn, cb) in due {
            cb(Ok(w_lsn));
        }
    }

    /// Poisons the log with the first failure's message (later calls
    /// keep the original), failing every pending waiter. Callbacks fire
    /// after the lock drops.
    pub(crate) fn poison(&self, msg: String) {
        let (msg, waiters) = {
            let mut g = self.lock();
            let msg = g.poisoned.get_or_insert(msg).clone();
            let waiters = std::mem::take(&mut g.waiters);
            self.work_cv.notify_all();
            self.durable_cv.notify_all();
            (msg, waiters)
        };
        for (_, cb) in waiters {
            cb(Err(msg.clone()));
        }
    }

    /// Asks the thread to exit once pending requests are flushed.
    pub(crate) fn shutdown(&self) {
        let mut g = self.lock();
        g.shutdown = true;
        self.work_cv.notify_all();
    }

    /// Crash-simulation hook: the thread exits without flushing pending
    /// work, so an `abort()`ed server leaves exactly what a `kill -9`
    /// would — unfsynced (hence unacknowledged) records stay that way.
    #[doc(hidden)]
    pub fn abandon(&self) {
        let mut g = self.lock();
        g.abandon = true;
        self.work_cv.notify_all();
    }

    /// Test hook: the next `n` fsyncs (inline or thread) fail with an
    /// injected I/O error, exercising the poison path without a real
    /// device failure.
    #[doc(hidden)]
    pub fn inject_fsync_failures(&self, n: u32) {
        self.lock().fail_fsyncs = n;
    }

    /// Consumes one armed injected failure, if any.
    pub(crate) fn take_injected_failure(&self) -> bool {
        let mut g = self.lock();
        if g.fail_fsyncs > 0 {
            g.fail_fsyncs -= 1;
            true
        } else {
            false
        }
    }

    /// Group-formation window. A completion wakes every blocked client
    /// at once, but they re-append one at a time through the storage
    /// lock — sampling `requested` the instant it moves would fsync a
    /// fragment of the forming group and pay a whole device flush for
    /// it. Wait until `requested` holds still for one quiet window (or
    /// the deadline passes), then let the caller fsync the whole group.
    /// Durability is unaffected: acks still fire only after the fsync.
    fn settle<'a>(&'a self, mut g: MutexGuard<'a, CommitState>) -> MutexGuard<'a, CommitState> {
        const QUIET: Duration = Duration::from_micros(20);
        const DEADLINE: Duration = Duration::from_micros(200);
        let start = Stopwatch::start();
        let mut last = g.requested;
        loop {
            if g.poisoned.is_some() || g.abandon || g.shutdown || start.elapsed() >= DEADLINE {
                return g;
            }
            let (guard, wait) = self
                .work_cv
                .wait_timeout(g, QUIET)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
            if wait.timed_out() && g.requested == last {
                return g;
            }
            last = g.requested;
        }
    }

    /// The fsync-thread body: wait for requested work, let the group
    /// settle, fsync the active segment *outside* the lock, advance the
    /// watermark. Exits on shutdown (after draining pending work), on
    /// poison, and immediately after poisoning on its own fsync failure
    /// — a failed fsync is never retried.
    pub(crate) fn run(self: Arc<Self>) {
        loop {
            let (file, target, inject) = {
                let mut g = self.lock();
                loop {
                    if g.poisoned.is_some() || g.abandon {
                        return;
                    }
                    let mut pending = g.requested > self.durable.load(Ordering::Acquire);
                    if pending && g.file.is_some() && !g.shutdown {
                        g = self.settle(g);
                        if g.poisoned.is_some() || g.abandon {
                            return;
                        }
                        pending = g.requested > self.durable.load(Ordering::Acquire);
                    }
                    if pending {
                        if let Some(f) = &g.file {
                            let file = Arc::clone(f);
                            let target = g.requested;
                            let inject = g.fail_fsyncs > 0;
                            if inject {
                                g.fail_fsyncs -= 1;
                            }
                            break (file, target, inject);
                        }
                    }
                    if g.shutdown {
                        return;
                    }
                    g = self.work_cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
            };
            let t = Stopwatch::start();
            let res = if inject {
                Err(io::Error::other("injected fsync failure"))
            } else {
                file.sync_data()
            };
            match res {
                Ok(()) => {
                    self.fsync_lat.observe(&t);
                    self.complete_through(target);
                }
                Err(e) => {
                    self.poison(format!("wal fsync failed: {e}"));
                    return;
                }
            }
        }
    }
}
