//! The segmented append-only write-ahead log.
//!
//! # On-disk format
//!
//! A log is a directory of segment files named `wal-<first_seq:016x>.log`,
//! where `first_seq` is the sequence number of the segment's first record.
//! Each record is:
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][seq: u64 LE][payload: len bytes]
//! ```
//!
//! `crc` is the CRC-32 of `seq` (LE bytes) followed by the payload, so a
//! record whose header survived but whose body was torn or bit-flipped is
//! detected. Sequence numbers are global across segments and strictly
//! increasing, which replay verifies — a record whose checksum passes but
//! whose seq is out of order is treated as corruption, not data.
//!
//! # Durability policy
//!
//! [`FsyncPolicy`] picks the ack-vs-loss trade: `Always` fsyncs after
//! every append (no acknowledged record is ever lost), `EveryN(n)` group-
//! commits every `n` records (bounded loss window of at most `n - 1`
//! acknowledged records on power failure — process crashes lose nothing
//! either way because appends go straight to the file, not a userspace
//! buffer), `Never` leaves flushing to the OS (benchmark baseline).
//!
//! # Failure handling
//!
//! Opening truncates a torn final record off the newest segment (the
//! normal shape after a mid-append crash). Replay stops at the first
//! record that fails its checksum or breaks seq monotonicity and reports
//! how far it got — it never panics and never returns bytes that did not
//! pass verification.
//!
//! A *failed* fsync poisons the log permanently (see [`crate::commit`]):
//! after the kernel reports an fsync error it may drop the dirty pages,
//! so a retried fsync can falsely succeed — every later append or sync
//! returns the original error and no fsync is ever retried.

use crate::binser;
use crate::commit::GroupCommit;
use crate::crc::Crc32;
use datacron_stream::clock::Stopwatch;
use datacron_stream::LatencyHistogram;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Record header bytes: `len` + `crc` + `seq`.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8;

/// Largest accepted record payload (a guard against reading a corrupt
/// length field as a multi-gigabyte allocation).
pub const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// When to fsync appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record: an acknowledged record survives power loss.
    Always,
    /// Group commit: fsync once every `n` records (`n` is clamped to ≥ 1).
    /// At most `n - 1` acknowledged records can be lost to power failure.
    EveryN(u32),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `every=N` (used by the CLI flag).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "never" => Some(Self::Never),
            _ => s
                .strip_prefix("every=")
                .and_then(|n| n.parse().ok())
                .map(Self::EveryN),
        }
    }
}

/// WAL tuning knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: u64,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A sealed or active segment.
#[derive(Debug)]
struct Segment {
    first_seq: u64,
    path: PathBuf,
}

/// How far replay got and why it stopped early (if it did).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayEnd {
    /// Every record to the end of the log verified.
    Clean,
    /// A record failed verification; replay stopped just before it.
    Corrupt {
        /// The file holding the bad record.
        segment: PathBuf,
        /// Byte offset of the bad record within that file.
        offset: u64,
        /// What failed.
        reason: String,
    },
}

/// The records replay recovered, in order, plus how the scan ended.
#[derive(Debug)]
pub struct Replay {
    /// `(seq, payload)` for every verified record at or after the
    /// requested start, in sequence order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Whether the log verified to its end.
    pub end: ReplayEnd,
}

/// The segmented write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    /// All segments in first-seq order; the last one is active.
    segments: Vec<Segment>,
    active: File,
    active_bytes: u64,
    next_seq: u64,
    /// Records appended since the last fsync (group-commit counter).
    unsynced: u32,
    /// fsync call latency (the group-commit cost the bench sweeps);
    /// `Arc`-shared so it can be registered into a metrics registry.
    fsync_lat: Arc<LatencyHistogram>,
    appended: u64,
    /// What open-time recovery cut off the newest segment, if anything.
    truncation_note: Option<String>,
    /// The shared group-commit core: durable watermark, waiters, and
    /// the poison flag (consulted even when no fsync thread runs).
    commit: Arc<GroupCommit>,
    /// When set (policy `Always` with a fsync thread attached), appends
    /// request durability from the thread instead of fsyncing inline.
    group_mode: bool,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:016x}.log"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

/// What [`read_record`] found at the reader's position: a record, a clean
/// end-of-file (`Ok(None)`), or a torn/corrupt record (`Err(reason)`).
type RecordOutcome = Result<Option<(u64, Vec<u8>)>, String>;

/// Reads one record at the reader's position.
fn read_record(reader: &mut impl Read) -> io::Result<RecordOutcome> {
    let mut header = [0u8; RECORD_HEADER_BYTES];
    match reader.read(&mut header)? {
        0 => return Ok(Ok(None)),
        n if n < RECORD_HEADER_BYTES => {
            // A short header; fill what we can to distinguish torn from EOF.
            let mut got = n;
            while got < RECORD_HEADER_BYTES {
                let m = reader.read(&mut header[got..])?;
                if m == 0 {
                    return Ok(Err(format!(
                        "torn header: {got} of {RECORD_HEADER_BYTES} bytes"
                    )));
                }
                got += m;
            }
        }
        _ => {}
    }
    let len = u32::from_le_bytes(binser::field(&header, 0));
    let crc = u32::from_le_bytes(binser::field(&header, 4));
    let seq = u64::from_le_bytes(binser::field(&header, 8));
    if len > MAX_RECORD_BYTES {
        return Ok(Err(format!(
            "record length {len} exceeds the {MAX_RECORD_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        let m = reader.read(&mut payload[got..])?;
        if m == 0 {
            return Ok(Err(format!("torn payload: {got} of {len} bytes")));
        }
        got += m;
    }
    let mut check = Crc32::new();
    check.update(&header[8..16]);
    check.update(&payload);
    let actual = check.finalize();
    if actual != crc {
        return Ok(Err(format!(
            "checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(Ok(Some((seq, payload))))
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`. A torn final record in
    /// the newest segment — the footprint of a crash mid-append — is
    /// truncated away so the log is immediately appendable; corruption
    /// deeper in the log is left for [`Wal::replay_from`] to report.
    pub fn open(dir: impl Into<PathBuf>, cfg: WalConfig) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments: Vec<Segment> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let first_seq = parse_segment_name(name.to_str()?)?;
                Some(Segment {
                    first_seq,
                    path: e.path(),
                })
            })
            .collect();
        segments.sort_by_key(|s| s.first_seq);
        if segments.is_empty() {
            segments.push(Segment {
                first_seq: 0,
                path: segment_path(&dir, 0),
            });
        }

        // Scan the newest segment: find the end of its last valid record,
        // truncate anything after it, and learn the next sequence number.
        // lint:allow(no_panic) a segment was pushed just above when the
        // directory scan found none, so the list is never empty here.
        let last = segments.last().expect("at least one segment");
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&last.path)?;
        file.seek(SeekFrom::Start(0))?;
        let mut reader = io::BufReader::new(&mut file);
        let mut valid_end: u64 = 0;
        let mut next_seq = last.first_seq;
        let mut tail_error: Option<String> = None;
        loop {
            match read_record(&mut reader)? {
                Ok(Some((seq, payload))) => {
                    valid_end += (RECORD_HEADER_BYTES + payload.len()) as u64;
                    next_seq = seq + 1;
                }
                Ok(None) => break,
                Err(reason) => {
                    // Torn/corrupt tail: remember why, cut it off below.
                    tail_error = Some(reason);
                    break;
                }
            }
        }
        drop(reader);
        let disk_len = file.metadata()?.len();
        let truncation_note = (disk_len > valid_end).then(|| {
            format!(
                "truncated {} invalid bytes after seq {} ({})",
                disk_len - valid_end,
                next_seq.wrapping_sub(1),
                tail_error.unwrap_or_else(|| "trailing bytes".into()),
            )
        });
        if disk_len > valid_end {
            file.set_len(valid_end)?;
        }
        file.seek(SeekFrom::End(0))?;
        let active_bytes = valid_end;

        let fsync_lat = Arc::new(LatencyHistogram::new());
        Ok(Self {
            dir,
            cfg,
            active: file,
            active_bytes,
            next_seq,
            unsynced: 0,
            // Everything recovered from disk counts as durable.
            commit: GroupCommit::new(Arc::clone(&fsync_lat), next_seq),
            fsync_lat,
            appended: 0,
            truncation_note,
            segments,
            group_mode: false,
        })
    }

    /// Switches [`FsyncPolicy::Always`] appends from inline fsync to
    /// requesting durability from a fsync thread (which the owner must
    /// run on [`Wal::commit_handle`]). Hands the thread the active
    /// segment's fd.
    pub fn enable_group_commit(&mut self) -> io::Result<()> {
        self.commit.set_active_file(self.active.try_clone()?);
        self.group_mode = true;
        Ok(())
    }

    /// The shared group-commit core (durable watermark, deferred acks,
    /// poison state).
    pub fn commit_handle(&self) -> Arc<GroupCommit> {
        Arc::clone(&self.commit)
    }

    /// True when appends defer fsync to the group-commit thread.
    pub fn group_commit_active(&self) -> bool {
        self.group_mode
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records appended through this handle (not counting recovered ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes across all segment files.
    pub fn wal_bytes(&self) -> u64 {
        let sealed: u64 = self.segments[..self.segments.len() - 1]
            .iter()
            .filter_map(|s| fs::metadata(&s.path).ok())
            .map(|m| m.len())
            .sum();
        sealed + self.active_bytes
    }

    /// The fsync-latency histogram (µs), for the stats endpoint.
    pub fn fsync_latency(&self) -> &LatencyHistogram {
        &self.fsync_lat
    }

    /// Shared handle to the fsync-latency histogram, the form a metrics
    /// registry registers.
    pub fn fsync_latency_shared(&self) -> Arc<LatencyHistogram> {
        Arc::clone(&self.fsync_lat)
    }

    /// What open-time recovery truncated off the newest segment, if
    /// anything — the footprint of a crash mid-append (or a bit flip in
    /// the final record).
    pub fn truncation_note(&self) -> Option<&str> {
        self.truncation_note.as_deref()
    }

    /// Appends one record and applies the fsync policy. Returns the
    /// record's sequence number; when this returns under
    /// [`FsyncPolicy::Always`] *without* group commit, the record is on
    /// disk. With group commit enabled the record's durability is
    /// requested from the fsync thread instead — wait on the commit
    /// handle for `durable_lsn >= seq + 1` before acknowledging.
    ///
    /// Fails immediately (with the original error, no fsync retried)
    /// once the log is poisoned by a failed fsync.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.commit.check_poison()?;
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload exceeds {MAX_RECORD_BYTES} bytes"),
            ));
        }
        if self.active_bytes >= self.cfg.segment_bytes {
            self.roll_segment()?;
        }
        let seq = self.next_seq;
        let seq_bytes = seq.to_le_bytes();
        let mut check = Crc32::new();
        check.update(&seq_bytes);
        check.update(payload);
        let mut buf = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&check.finalize().to_le_bytes());
        buf.extend_from_slice(&seq_bytes);
        buf.extend_from_slice(payload);
        self.active.write_all(&buf)?;
        self.active_bytes += buf.len() as u64;
        self.next_seq += 1;
        self.appended += 1;
        self.unsynced += 1;
        match self.cfg.fsync {
            FsyncPolicy::Always => {
                if self.group_mode {
                    self.commit.request(self.next_seq);
                } else {
                    self.sync()?;
                }
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Flushes and fsyncs the active segment now, regardless of policy,
    /// advancing the durable watermark. On failure the log is poisoned:
    /// this and every later append/sync return the original error and
    /// the fsync is never retried (see the module docs).
    pub fn sync(&mut self) -> io::Result<()> {
        self.commit.check_poison()?;
        let t = Stopwatch::start();
        let res = if self.commit.take_injected_failure() {
            Err(io::Error::other("injected fsync failure"))
        } else {
            self.active.sync_data()
        };
        match res {
            Ok(()) => {
                self.fsync_lat.observe(&t);
                self.unsynced = 0;
                self.commit.complete_through(self.next_seq);
                Ok(())
            }
            Err(e) => {
                self.commit.poison(format!("wal fsync failed: {e}"));
                Err(e)
            }
        }
    }

    /// Seals the active segment and starts a new one named after the
    /// next sequence number. The seal goes through [`Wal::sync`] so it
    /// is counted, timed, and poison-checked like every other fsync —
    /// and so the group-commit thread never needs to touch a sealed
    /// segment (its records are durable before the swap).
    fn roll_segment(&mut self) -> io::Result<()> {
        self.sync()?;
        let path = segment_path(&self.dir, self.next_seq);
        self.active = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        self.active_bytes = 0;
        self.unsynced = 0;
        self.segments.push(Segment {
            first_seq: self.next_seq,
            path,
        });
        if self.group_mode {
            self.commit.set_active_file(self.active.try_clone()?);
        }
        Ok(())
    }

    /// Replays every verified record with `seq >= from_seq`, in order,
    /// stopping (never panicking) at the first record that fails its
    /// checksum, breaks sequence monotonicity, or is torn.
    pub fn replay_from(&self, from_seq: u64) -> io::Result<Replay> {
        let mut records = Vec::new();
        let mut end = ReplayEnd::Clean;
        let mut expect_seq: Option<u64> = None;
        'segments: for (i, seg) in self.segments.iter().enumerate() {
            // Skip segments that end before the requested start.
            if let Some(next) = self.segments.get(i + 1) {
                if next.first_seq <= from_seq {
                    expect_seq = Some(next.first_seq);
                    continue;
                }
            }
            let file = match File::open(&seg.path) {
                Ok(f) => f,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let mut reader = io::BufReader::new(file);
            let mut offset: u64 = 0;
            loop {
                match read_record(&mut reader)? {
                    Ok(Some((seq, payload))) => {
                        let plausible = expect_seq.is_none_or(|e| seq == e) && seq >= seg.first_seq;
                        if !plausible {
                            end = ReplayEnd::Corrupt {
                                segment: seg.path.clone(),
                                offset,
                                reason: format!(
                                    "sequence break: got {seq}, expected {:?}",
                                    expect_seq
                                ),
                            };
                            break 'segments;
                        }
                        offset += (RECORD_HEADER_BYTES + payload.len()) as u64;
                        expect_seq = Some(seq + 1);
                        if seq >= from_seq {
                            records.push((seq, payload));
                        }
                    }
                    Ok(None) => break,
                    Err(reason) => {
                        end = ReplayEnd::Corrupt {
                            segment: seg.path.clone(),
                            offset,
                            reason,
                        };
                        break 'segments;
                    }
                }
            }
        }
        Ok(Replay { records, end })
    }

    /// First sequence number still present in the log: the first
    /// segment's starting sequence. A reader asking for anything older
    /// must bootstrap from a snapshot instead.
    pub fn first_retained_seq(&self) -> u64 {
        self.segments.first().map_or(0, |s| s.first_seq)
    }

    /// Bounded tail read for replication: verified records with
    /// `seq >= from_seq`, in order, stopping after `max_records`
    /// records or once `max_bytes` of payload have been collected
    /// (at least one record is returned if one exists, so a single
    /// oversized record cannot wedge a tailer). `from_seq` must be at
    /// least [`Wal::first_retained_seq`]; older positions silently
    /// start at the first retained record — callers are expected to
    /// check and fall back to a snapshot.
    ///
    /// Like [`Wal::replay_from`], this never returns unverified bytes:
    /// the scan stops quietly at the first torn or corrupt record.
    /// Appends go straight to the file (no userspace buffer), so a
    /// tail read through a fresh handle observes every acknowledged
    /// append.
    pub fn tail_from(
        &self,
        from_seq: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut bytes = 0usize;
        let mut expect_seq: Option<u64> = None;
        'segments: for (i, seg) in self.segments.iter().enumerate() {
            // Skip segments that end before the requested start.
            if let Some(next) = self.segments.get(i + 1) {
                if next.first_seq <= from_seq {
                    expect_seq = Some(next.first_seq);
                    continue;
                }
            }
            let file = match File::open(&seg.path) {
                Ok(f) => f,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let mut reader = io::BufReader::new(file);
            loop {
                match read_record(&mut reader)? {
                    Ok(Some((seq, payload))) => {
                        let plausible = expect_seq.is_none_or(|e| seq == e) && seq >= seg.first_seq;
                        if !plausible {
                            break 'segments;
                        }
                        expect_seq = Some(seq + 1);
                        if seq >= from_seq {
                            bytes += payload.len();
                            records.push((seq, payload));
                            if records.len() >= max_records.max(1) || bytes >= max_bytes.max(1) {
                                break 'segments;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break 'segments,
                }
            }
        }
        Ok(records)
    }

    /// Deletes sealed segments made wholly redundant by a snapshot that
    /// covers every record with `seq < through_seq`. The active segment is
    /// never deleted. Returns how many segments were removed.
    pub fn retire_through(&mut self, through_seq: u64) -> io::Result<usize> {
        let mut removed = 0;
        // A segment is disposable when the *next* segment starts at or
        // before `through_seq` — then all of its records are `< through_seq`
        // and already captured by the snapshot.
        while self.segments.len() > 1 && self.segments[1].first_seq <= through_seq {
            let seg = self.segments.remove(0);
            match fs::remove_file(&seg.path) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    // Put the bookkeeping back; disk use stays bounded next
                    // time retirement runs.
                    self.segments.insert(0, seg);
                    return Err(e);
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    fn wal_in(dir: &TempDir, cfg: WalConfig) -> Wal {
        Wal::open(dir.path(), cfg).expect("open wal")
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = TempDir::new("wal-roundtrip");
        let mut w = wal_in(&dir, WalConfig::default());
        for i in 0..20u64 {
            let seq = w.append(format!("payload-{i}").as_bytes()).unwrap();
            assert_eq!(seq, i);
        }
        let replay = w.replay_from(0).unwrap();
        assert_eq!(replay.end, ReplayEnd::Clean);
        assert_eq!(replay.records.len(), 20);
        for (i, (seq, payload)) in replay.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(payload, format!("payload-{i}").as_bytes());
        }
        // Mid-log start.
        let replay = w.replay_from(15).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.records[0].0, 15);
    }

    #[test]
    fn reopen_continues_sequence() {
        let dir = TempDir::new("wal-reopen");
        {
            let mut w = wal_in(&dir, WalConfig::default());
            for _ in 0..7 {
                w.append(b"x").unwrap();
            }
        }
        let mut w = wal_in(&dir, WalConfig::default());
        assert_eq!(w.next_seq(), 7);
        assert_eq!(w.append(b"y").unwrap(), 7);
        let replay = w.replay_from(0).unwrap();
        assert_eq!(replay.records.len(), 8);
        assert_eq!(replay.end, ReplayEnd::Clean);
    }

    #[test]
    fn segments_roll_and_retire() {
        let dir = TempDir::new("wal-segments");
        let mut w = wal_in(
            &dir,
            WalConfig {
                segment_bytes: 256,
                fsync: FsyncPolicy::Never,
            },
        );
        for i in 0..50u64 {
            w.append(format!("record-{i:04}-padding-padding").as_bytes())
                .unwrap();
        }
        assert!(w.segment_count() > 2, "{} segments", w.segment_count());
        let before = w.segment_count();
        let bytes_before = w.wal_bytes();

        // Snapshot covering seq < 30: every segment fully below it goes.
        let removed = w.retire_through(30).unwrap();
        assert!(removed > 0);
        assert_eq!(w.segment_count(), before - removed);
        assert!(w.wal_bytes() < bytes_before);

        // Replay still serves everything from 30 on.
        let replay = w.replay_from(30).unwrap();
        assert_eq!(replay.end, ReplayEnd::Clean);
        assert_eq!(replay.records.first().map(|r| r.0), Some(30));
        assert_eq!(replay.records.last().map(|r| r.0), Some(49));

        // Retiring everything still keeps the active segment.
        w.retire_through(u64::MAX).unwrap();
        assert_eq!(w.segment_count(), 1);
        assert_eq!(w.append(b"after-retire").unwrap(), 50);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("wal-torn");
        let path;
        {
            let mut w = wal_in(&dir, WalConfig::default());
            for i in 0..5u64 {
                w.append(format!("rec-{i}").as_bytes()).unwrap();
            }
            path = segment_path(dir.path(), 0);
        }
        // Simulate a crash mid-append: half a record of garbage after the
        // valid data.
        let valid = fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 9]).unwrap();
        drop(f);

        let mut w = wal_in(&dir, WalConfig::default());
        assert_eq!(fs::metadata(&path).unwrap().len(), valid, "torn bytes cut");
        assert_eq!(w.next_seq(), 5);
        assert!(w.truncation_note().is_some(), "the cut must be reported");
        let replay = w.replay_from(0).unwrap();
        assert_eq!(replay.end, ReplayEnd::Clean);
        assert_eq!(replay.records.len(), 5);
        // And appends keep working.
        assert_eq!(w.append(b"recovered").unwrap(), 5);
    }

    #[test]
    fn bit_flip_stops_replay_at_last_good_record() {
        let dir = TempDir::new("wal-bitflip");
        let mut w = wal_in(&dir, WalConfig::default());
        for i in 0..6u64 {
            w.append(format!("record-number-{i}").as_bytes()).unwrap();
        }
        // Flip one payload bit in record 4 (offset: 4 full records, then
        // past the header into the payload).
        let rec_len = RECORD_HEADER_BYTES + "record-number-0".len();
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let victim = 4 * rec_len + RECORD_HEADER_BYTES + 3;
        bytes[victim] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let replay = w.replay_from(0).unwrap();
        assert_eq!(replay.records.len(), 4, "stop before the flipped record");
        assert!(matches!(replay.end, ReplayEnd::Corrupt { .. }));
        if let ReplayEnd::Corrupt { offset, reason, .. } = &replay.end {
            assert_eq!(*offset, (4 * rec_len) as u64);
            assert!(reason.contains("checksum"), "{reason}");
        }
    }

    #[test]
    fn group_commit_counts_fsyncs() {
        let dir = TempDir::new("wal-group");
        let mut w = wal_in(
            &dir,
            WalConfig {
                fsync: FsyncPolicy::EveryN(8),
                ..WalConfig::default()
            },
        );
        for _ in 0..32 {
            w.append(b"batched").unwrap();
        }
        assert_eq!(w.fsync_latency().count(), 4, "32 records / batch of 8");
        let before = w.fsync_latency().count();
        w.sync().unwrap();
        assert_eq!(w.fsync_latency().count(), before + 1);
    }

    #[test]
    fn failed_fsync_poisons_permanently() {
        let dir = TempDir::new("wal-poison");
        let mut w = wal_in(&dir, WalConfig::default());
        assert_eq!(w.append(b"good").unwrap(), 0);
        let fsyncs_before_failure = w.fsync_latency().count();

        w.commit_handle().inject_fsync_failures(1);
        assert!(
            w.append(b"doomed").is_err(),
            "append over a failing fsync must error"
        );

        // Every later append and sync returns the original error without
        // issuing another fsync (a retry could falsely succeed after the
        // kernel dropped the dirty pages).
        for _ in 0..3 {
            let e = w.append(b"after-poison").expect_err("poisoned");
            assert!(e.to_string().contains("injected fsync failure"), "{e}");
        }
        let e = w.sync().expect_err("poisoned");
        assert!(e.to_string().contains("injected fsync failure"), "{e}");
        assert_eq!(
            w.fsync_latency().count(),
            fsyncs_before_failure,
            "no fsync may run after poisoning"
        );
        assert!(w.commit_handle().check_poison().is_err());
    }

    #[test]
    fn segment_seal_counts_as_fsync() {
        // The roll_segment seal used to call sync_data() directly,
        // bypassing the latency histogram and the fsync counter.
        let dir = TempDir::new("wal-seal-count");
        let mut w = wal_in(
            &dir,
            WalConfig {
                segment_bytes: 128,
                fsync: FsyncPolicy::Never,
            },
        );
        for _ in 0..20 {
            w.append(&[0x5A; 48]).unwrap();
        }
        let rolls = (w.segment_count() - 1) as u64;
        assert!(rolls > 0, "must have rolled");
        assert_eq!(w.fsync_latency().count(), rolls, "each seal is one fsync");
    }

    #[test]
    fn group_mode_defers_fsync_and_watermark_tracks() {
        let dir = TempDir::new("wal-group-mode");
        let mut w = wal_in(&dir, WalConfig::default());
        w.enable_group_commit().unwrap();
        let commit = w.commit_handle();
        for i in 0..5u64 {
            assert_eq!(w.append(b"deferred").unwrap(), i);
        }
        // No inline fsync ran; durability was only *requested*.
        assert_eq!(w.fsync_latency().count(), 0);
        assert_eq!(commit.durable_lsn(), 0);
        // An explicit sync (no thread in this test) advances the
        // watermark and completes the whole group at once.
        w.sync().unwrap();
        assert_eq!(commit.durable_lsn(), 5);
        assert_eq!(commit.wait_durable(5).unwrap(), 5);
        assert_eq!(commit.batches(), 1);
    }

    #[test]
    fn oversized_payload_rejected() {
        let dir = TempDir::new("wal-oversize");
        let mut w = wal_in(&dir, WalConfig::default());
        // Don't allocate 256 MiB in a unit test; check the guard by header
        // math instead: a fake length field beyond the cap fails replay.
        assert!(w.append(&[0u8; 16]).is_ok());
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0..4].copy_from_slice(&(MAX_RECORD_BYTES + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let replay = w.replay_from(0).unwrap();
        assert!(replay.records.is_empty());
        assert!(matches!(replay.end, ReplayEnd::Corrupt { .. }));
    }
}
