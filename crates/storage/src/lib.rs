//! datAcron reproduction: durable WAL + snapshot persistence with crash
//! recovery for the serving pipeline.
//!
//! The EDBT 2017 architecture assumes its distributed storage keeps the
//! integrated archive safe; this crate is that substrate for the
//! single-machine reproduction, in the classic WAL + checkpoint shape
//! (the same one etcd-style stores use):
//!
//! * [`wal`] — a segmented append-only log of ingest batches with
//!   CRC-checksummed records and group-commit fsync batching;
//! * [`commit`] — the group-commit core: a dedicated fsync thread, a
//!   shared `durable_lsn` watermark, deferred-ack callbacks, and
//!   permanent poisoning on fsync failure;
//! * [`snapshot`] — atomic point-in-time snapshots of pipeline state,
//!   CRC-verified with fallback to older snapshots on corruption;
//! * [`binser`] — the compact binary codec both use for payloads;
//! * [`crc`] — the CRC-32 implementation behind every checksum;
//! * [`Storage`] — the façade the server drives: append on ingest,
//!   checkpoint on threshold, recover on start.
//!
//! # Recovery contract
//!
//! [`Storage::open`] returns the newest **valid** snapshot (corrupt ones
//! are skipped) plus the verified WAL records after it, stopping at the
//! first torn or corrupted record — never panicking. Applying the
//! snapshot and replaying the tail reproduces the pre-crash
//! query-visible state; a snapshot also retires fully-covered WAL
//! segments, bounding disk use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binser;
pub mod commit;
pub mod crc;
pub mod snapshot;
pub mod wal;

pub use binser::{BinError, Reader, Writer};
pub use commit::{AckCallback, GroupCommit};
pub use crc::{crc32, Crc32};
pub use snapshot::SnapshotStore;
pub use wal::{FsyncPolicy, Replay, ReplayEnd, Wal, WalConfig};

use datacron_obs::{ClockSource, MonotonicClock, Registry};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Storage tuning knobs.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// WAL segment roll threshold, bytes.
    pub segment_bytes: u64,
    /// Durability policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Take a snapshot after this many WAL records since the last one
    /// (`0` disables threshold-driven snapshotting; an explicit
    /// [`Storage::install_snapshot`] still works).
    pub snapshot_every_records: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
            snapshot_every_records: 1024,
        }
    }
}

/// What [`Storage::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The newest valid snapshot, as `(wal_seq, payload)` — apply it
    /// first. `None` on a fresh directory (or when every snapshot failed
    /// verification): replay starts from the log's beginning.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Verified WAL records after the snapshot position, in order —
    /// replay these through the pipeline.
    pub wal_tail: Vec<(u64, Vec<u8>)>,
    /// `Some(description)` when the log ended in a torn or corrupted
    /// record that was dropped (expected after a crash mid-append).
    pub truncation: Option<String>,
}

/// Point-in-time storage counters for the server's `stats` endpoint.
#[derive(Debug, Clone)]
pub struct StorageStats {
    /// Total bytes across WAL segment files.
    pub wal_bytes: u64,
    /// Number of WAL segment files.
    pub segments: usize,
    /// WAL records appended since the last snapshot.
    pub records_since_snapshot: u64,
    /// Sequence number the next WAL append will get.
    pub next_seq: u64,
    /// WAL position of the newest installed snapshot.
    pub last_snapshot_seq: u64,
    /// p99 fsync latency, µs (0 before the first fsync).
    pub fsync_p99_us: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Microseconds since this handle last installed a snapshot, against
    /// the injected clock. `None` until the first install (a snapshot
    /// recovered from disk predates the clock, so its age is unknown).
    pub snapshot_age_us: Option<u64>,
    /// Durability watermark: records `0..durable_lsn` are on disk.
    pub durable_lsn: u64,
    /// Group-commit fsync batches completed.
    pub commit_batches: u64,
    /// Deferred-ack waiters ever registered with the commit core.
    pub commit_waiters: u64,
    /// Snapshot installations that failed.
    pub snapshot_failures: u64,
    /// The most recent snapshot-installation error, if the last attempt
    /// failed (cleared by the next success).
    pub last_snapshot_error: Option<String>,
}

/// The durable-state façade: one WAL plus one snapshot store in a data
/// directory.
#[derive(Debug)]
pub struct Storage {
    wal: Wal,
    snaps: SnapshotStore,
    cfg: StorageConfig,
    last_snapshot_seq: u64,
    /// The injected time source (L4 `wallclock`: library code never
    /// reads the wall clock directly).
    clock: Arc<dyn ClockSource>,
    /// Clock reading when this handle last installed a snapshot.
    last_snapshot_at_us: Option<u64>,
    /// The group-commit fsync thread (policy `Always` only); joined on
    /// drop after a shutdown request drains pending work.
    fsync_thread: Option<std::thread::JoinHandle<()>>,
    /// Snapshot installations that failed (surfaced in stats/metrics;
    /// the old path only `eprintln!`ed at the call site).
    snapshot_failures: u64,
    /// Most recent snapshot-installation error, cleared on success.
    last_snapshot_error: Option<String>,
}

impl Storage {
    /// Opens the data directory, recovering whatever it holds: the newest
    /// valid snapshot and the verified WAL records after it. Timestamps
    /// (snapshot age) run against a fresh monotonic clock; use
    /// [`Storage::open_with_clock`] to inject one.
    pub fn open(dir: impl AsRef<Path>, cfg: StorageConfig) -> io::Result<(Self, Recovery)> {
        Self::open_with_clock(dir, cfg, Arc::new(MonotonicClock::new()))
    }

    /// Like [`Storage::open`], with an injected [`ClockSource`] — the
    /// server shares its clock; tests inject a manual one.
    pub fn open_with_clock(
        dir: impl AsRef<Path>,
        cfg: StorageConfig,
        clock: Arc<dyn ClockSource>,
    ) -> io::Result<(Self, Recovery)> {
        let dir: PathBuf = dir.as_ref().into();
        let mut wal = Wal::open(
            dir.join("wal"),
            WalConfig {
                segment_bytes: cfg.segment_bytes,
                fsync: cfg.fsync,
            },
        )?;
        // Policy `Always` gets the dedicated fsync thread: appends write
        // and request durability; the thread batches concurrent requests
        // into one fsync and advances the shared watermark. `EveryN` and
        // `Never` keep their inline behavior.
        let fsync_thread = if cfg.fsync == FsyncPolicy::Always {
            wal.enable_group_commit()?;
            let commit = wal.commit_handle();
            Some(
                std::thread::Builder::new()
                    .name("datacron-wal-fsync".into())
                    .spawn(move || commit.run())?,
            )
        } else {
            None
        };
        let snaps = SnapshotStore::open(dir.join("snapshots"))?;
        let snapshot = snaps.load_latest()?;
        let from_seq = snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        let replay = wal.replay_from(from_seq)?;
        // Open-time recovery already cut a torn/corrupt newest-segment
        // tail; corruption deeper in the log surfaces from replay.
        let truncation = wal
            .truncation_note()
            .map(str::to_string)
            .or(match replay.end {
                ReplayEnd::Clean => None,
                ReplayEnd::Corrupt {
                    segment,
                    offset,
                    reason,
                } => Some(format!("{} at byte {offset}: {reason}", segment.display())),
            });
        let storage = Self {
            last_snapshot_seq: from_seq,
            wal,
            snaps,
            cfg,
            clock,
            last_snapshot_at_us: None,
            fsync_thread,
            snapshot_failures: 0,
            last_snapshot_error: None,
        };
        Ok((
            storage,
            Recovery {
                snapshot,
                wal_tail: replay.records,
                truncation,
            },
        ))
    }

    /// Appends one durable record (an encoded ingest batch). When this
    /// returns under [`FsyncPolicy::Always`], the record is on disk —
    /// with group commit active the call blocks until the watermark
    /// covers the record (sharing the fsync with concurrent appends).
    /// Callers who can defer the ack should use
    /// [`Storage::append_async`] instead and not block at all.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let (seq, deferred) = self.append_async(payload)?;
        if deferred {
            self.wal.commit_handle().wait_durable(seq + 1)?;
        }
        Ok(seq)
    }

    /// Appends one record without waiting for durability. Returns the
    /// record's sequence number and whether durability was *deferred*:
    /// `false` means the configured policy already ran inline (the old
    /// contract holds); `true` means the caller must gate its ack on
    /// the commit core — [`Storage::commit`] — reaching
    /// `durable_lsn >= seq + 1` (via `ack_when` or `wait_durable`).
    pub fn append_async(&mut self, payload: &[u8]) -> io::Result<(u64, bool)> {
        let seq = self.wal.append(payload)?;
        Ok((seq, self.wal.group_commit_active()))
    }

    /// The shared group-commit core: durable watermark, deferred acks,
    /// poison state. Present under every policy (the watermark advances
    /// on inline fsyncs too); only [`FsyncPolicy::Always`] runs the
    /// fsync thread against it.
    pub fn commit(&self) -> Arc<GroupCommit> {
        self.wal.commit_handle()
    }

    /// True when appends defer fsync to the group-commit thread.
    pub fn group_commit_active(&self) -> bool {
        self.wal.group_commit_active()
    }

    /// Flushes and fsyncs the WAL regardless of policy (shutdown path).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// WAL records appended since the last installed snapshot.
    pub fn records_since_snapshot(&self) -> u64 {
        self.wal.next_seq().saturating_sub(self.last_snapshot_seq)
    }

    /// True when the snapshot threshold has been reached.
    pub fn should_snapshot(&self) -> bool {
        self.cfg.snapshot_every_records > 0
            && self.records_since_snapshot() >= self.cfg.snapshot_every_records
    }

    /// Installs a snapshot of the *current* state (the caller must have
    /// applied every appended record before serializing it): fsyncs the
    /// WAL, writes the snapshot at the current WAL position, and retires
    /// the segments the snapshot made redundant.
    pub fn install_snapshot(&mut self, payload: &[u8]) -> io::Result<u64> {
        match self.install_snapshot_inner(payload) {
            Ok(seq) => {
                self.last_snapshot_error = None;
                Ok(seq)
            }
            Err(e) => {
                self.snapshot_failures += 1;
                self.last_snapshot_error = Some(e.to_string());
                Err(e)
            }
        }
    }

    fn install_snapshot_inner(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.wal.sync()?;
        let wal_seq = self.wal.next_seq();
        self.snaps.save(wal_seq, payload)?;
        self.last_snapshot_seq = wal_seq;
        self.last_snapshot_at_us = Some(self.clock.now_us());
        self.wal.retire_through(wal_seq)?;
        Ok(wal_seq)
    }

    /// Snapshot installations that failed since this handle opened.
    pub fn snapshot_failures(&self) -> u64 {
        self.snapshot_failures
    }

    /// Sequence number the next WAL append will get (the leader's
    /// log head, one past the last appended record).
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// First sequence still present in the WAL; a replica wanting
    /// anything older must bootstrap from a snapshot.
    pub fn first_retained_seq(&self) -> u64 {
        self.wal.first_retained_seq()
    }

    /// Bounded verified read of WAL records with `seq >= from_seq` —
    /// the leader-side feed for replication frames. See
    /// [`Wal::tail_from`] for the contract.
    pub fn read_from(
        &self,
        from_seq: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> io::Result<Vec<(u64, Vec<u8>)>> {
        self.wal.tail_from(from_seq, max_records, max_bytes)
    }

    /// Storage counters for the stats endpoint.
    pub fn stats(&self) -> StorageStats {
        let fsync = self.wal.fsync_latency();
        let commit = self.wal.commit_handle();
        StorageStats {
            wal_bytes: self.wal.wal_bytes(),
            segments: self.wal.segment_count(),
            records_since_snapshot: self.records_since_snapshot(),
            next_seq: self.wal.next_seq(),
            last_snapshot_seq: self.last_snapshot_seq,
            fsync_p99_us: fsync.percentile(99.0),
            fsyncs: fsync.count(),
            snapshot_age_us: self
                .last_snapshot_at_us
                .map(|at| self.clock.now_us().saturating_sub(at)),
            durable_lsn: commit.durable_lsn(),
            commit_batches: commit.batches(),
            commit_waiters: commit.waiters_registered(),
            snapshot_failures: self.snapshot_failures,
            last_snapshot_error: self.last_snapshot_error.clone(),
        }
    }

    /// Registers this store's durability metrics into `registry`:
    /// the shared fsync latency histogram as
    /// `datacron_wal_fsync_latency_us` and the records-per-fsync-batch
    /// histogram as `datacron_wal_group_size`. Point-in-time gauges
    /// (WAL bytes, segment count, durable LSN, snapshot age) need
    /// `&self` at scrape time, so the owner installs a collector for
    /// those — see the server crate.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_histogram(
            "datacron_wal_fsync_latency_us",
            &[],
            self.wal.fsync_latency_shared(),
        );
        registry.register_histogram(
            "datacron_wal_group_size",
            &[],
            self.wal.commit_handle().group_size_shared(),
        );
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let Some(handle) = self.fsync_thread.take() {
            // Drain-then-exit: the thread flushes any requested-but-not-
            // yet-durable records before returning, so dropping a healthy
            // store loses nothing.
            self.wal.commit_handle().shutdown();
            let _ = handle.join();
        }
    }
}

/// Test/bench support: a self-deleting temp directory. Public because the
/// workspace's integration tests and benches need the same guard and the
/// repository deliberately avoids external crates.
#[doc(hidden)]
pub mod test_util {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique directory under the system temp dir, removed on drop.
    #[derive(Debug)]
    pub struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        /// Creates `<tmp>/datacron-<tag>-<pid>-<n>`.
        pub fn new(tag: &str) -> Self {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("datacron-{tag}-{}-{n}", std::process::id()));
            // lint:allow(no_panic) test-support only: integration suites
            // cannot proceed without a scratch directory.
            std::fs::create_dir_all(&path).expect("create temp dir");
            Self { path }
        }

        /// The directory path.
        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_util::TempDir;

    fn cfg(snapshot_every: u64) -> StorageConfig {
        StorageConfig {
            segment_bytes: 512,
            fsync: FsyncPolicy::EveryN(4),
            snapshot_every_records: snapshot_every,
        }
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = TempDir::new("storage-fresh");
        let (st, rec) = Storage::open(dir.path(), cfg(0)).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.wal_tail.is_empty());
        assert!(rec.truncation.is_none());
        assert_eq!(st.stats().next_seq, 0);
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = TempDir::new("storage-tail");
        {
            let (mut st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
            for i in 0..10u64 {
                st.append(format!("batch-{i}").as_bytes()).unwrap();
            }
            st.install_snapshot(b"state-after-10").unwrap();
            for i in 10..13u64 {
                st.append(format!("batch-{i}").as_bytes()).unwrap();
            }
            st.sync().unwrap();
        }
        let (st, rec) = Storage::open(dir.path(), cfg(0)).unwrap();
        let (snap_seq, snap) = rec.snapshot.expect("snapshot present");
        assert_eq!(snap_seq, 10);
        assert_eq!(snap, b"state-after-10");
        let seqs: Vec<u64> = rec.wal_tail.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![10, 11, 12]);
        assert_eq!(rec.wal_tail[0].1, b"batch-10");
        assert!(rec.truncation.is_none());
        assert_eq!(st.stats().records_since_snapshot, 3);
    }

    #[test]
    fn snapshot_retires_segments() {
        let dir = TempDir::new("storage-retire");
        let (mut st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
        for _ in 0..100 {
            st.append(&[0x5A; 64]).unwrap();
        }
        let before = st.stats();
        assert!(before.segments > 2, "{} segments", before.segments);
        st.install_snapshot(b"checkpoint").unwrap();
        let after = st.stats();
        assert_eq!(after.segments, 1, "snapshot must retire covered segments");
        assert!(after.wal_bytes < before.wal_bytes);
        assert_eq!(after.records_since_snapshot, 0);
    }

    #[test]
    fn threshold_triggers() {
        let dir = TempDir::new("storage-threshold");
        let (mut st, _) = Storage::open(dir.path(), cfg(5)).unwrap();
        for _ in 0..4 {
            st.append(b"r").unwrap();
            assert!(!st.should_snapshot());
        }
        st.append(b"r").unwrap();
        assert!(st.should_snapshot());
        st.install_snapshot(b"s").unwrap();
        assert!(!st.should_snapshot());
    }

    #[test]
    fn corrupt_tail_is_reported_not_fatal() {
        let dir = TempDir::new("storage-corrupt");
        {
            let (mut st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
            for i in 0..5u64 {
                st.append(format!("good-{i}").as_bytes()).unwrap();
            }
        }
        // Bit-flip the last record's payload.
        let wal_dir = dir.path().join("wal");
        let seg = std::fs::read_dir(&wal_dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x80;
        std::fs::write(&seg, &bytes).unwrap();

        let (_, rec) = Storage::open(dir.path(), cfg(0)).unwrap();
        assert_eq!(rec.wal_tail.len(), 4, "recover to the last valid record");
        assert!(rec.truncation.is_some());
    }

    #[test]
    fn snapshot_age_tracks_injected_clock() {
        let dir = TempDir::new("storage-snap-age");
        let clock = Arc::new(datacron_obs::ManualClock::new());
        let (mut st, _) =
            Storage::open_with_clock(dir.path(), cfg(0), Arc::clone(&clock) as _).unwrap();
        assert_eq!(st.stats().snapshot_age_us, None, "no snapshot yet");
        st.append(b"r").unwrap();
        st.install_snapshot(b"s").unwrap();
        assert_eq!(st.stats().snapshot_age_us, Some(0));
        clock.advance_us(2_500);
        assert_eq!(st.stats().snapshot_age_us, Some(2_500));
        // A snapshot recovered from disk has unknown age.
        drop(st);
        let (st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
        assert_eq!(st.stats().snapshot_age_us, None);
    }

    #[test]
    fn read_from_is_bounded_and_ordered() {
        let dir = TempDir::new("storage-readfrom");
        let (mut st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
        for i in 0..20u64 {
            st.append(format!("frame-{i}").as_bytes()).unwrap();
        }
        assert_eq!(st.next_seq(), 20);
        assert_eq!(st.first_retained_seq(), 0);

        // Record bound.
        let got = st.read_from(5, 4, usize::MAX).unwrap();
        let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![5, 6, 7, 8]);
        assert_eq!(got[0].1, b"frame-5");

        // Byte bound: each payload is ~8 bytes, so 20 bytes stops
        // after the record that crosses it.
        let got = st.read_from(0, usize::MAX, 20).unwrap();
        assert!(got.len() >= 2 && got.len() < 20, "{} records", got.len());

        // At least one record is served even under a tiny byte cap.
        let got = st.read_from(3, usize::MAX, 1).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 3);

        // Reading past the head is empty, not an error.
        assert!(st.read_from(20, 100, usize::MAX).unwrap().is_empty());
    }

    #[test]
    fn read_from_spans_segments_and_snapshot_raises_floor() {
        let dir = TempDir::new("storage-readfrom-seg");
        let (mut st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
        for _ in 0..100 {
            st.append(&[0x5A; 64]).unwrap();
        }
        assert!(st.stats().segments > 2);
        let got = st.read_from(10, 50, usize::MAX).unwrap();
        assert_eq!(got.len(), 50);
        assert_eq!(got.first().map(|r| r.0), Some(10));
        assert_eq!(got.last().map(|r| r.0), Some(59));

        // A snapshot retires covered segments, raising the floor (only
        // the active segment survives); a tailer parked below the new
        // floor must re-bootstrap from the snapshot.
        let floor_before = st.first_retained_seq();
        st.install_snapshot(b"checkpoint").unwrap();
        assert!(st.first_retained_seq() > floor_before);
        assert_eq!(st.stats().segments, 1);
        assert!(st.read_from(100, 10, usize::MAX).unwrap().is_empty());
        st.append(b"after-snap").unwrap();
        let got = st.read_from(100, 10, usize::MAX).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 100);
        assert_eq!(got[0].1, b"after-snap");
    }

    #[test]
    fn read_from_observes_unsynced_appends() {
        // Group-commit leaves records unfsynced; they are still
        // immediately visible to a tail read (appends bypass any
        // userspace buffer).
        let dir = TempDir::new("storage-readfrom-unsynced");
        let (mut st, _) = Storage::open(
            dir.path(),
            StorageConfig {
                fsync: FsyncPolicy::Never,
                ..cfg(0)
            },
        )
        .unwrap();
        st.append(b"unsynced").unwrap();
        let got = st.read_from(0, 10, usize::MAX).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, b"unsynced");
    }

    fn always_cfg() -> StorageConfig {
        StorageConfig {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
            snapshot_every_records: 0,
        }
    }

    #[test]
    fn group_commit_blocking_append_is_durable() {
        let dir = TempDir::new("storage-group-append");
        let (mut st, _) = Storage::open(dir.path(), always_cfg()).unwrap();
        assert!(st.group_commit_active(), "Always spawns the fsync thread");
        for i in 0..10u64 {
            assert_eq!(st.append(format!("r{i}").as_bytes()).unwrap(), i);
            assert!(
                st.commit().durable_lsn() > i,
                "blocking append must not return before its record is durable"
            );
        }
        let stats = st.stats();
        assert_eq!(stats.durable_lsn, 10);
        assert!(stats.commit_batches >= 1);
        assert!(stats.fsyncs >= 1);
    }

    #[test]
    fn deferred_acks_fire_on_watermark() {
        let dir = TempDir::new("storage-group-acks");
        let (mut st, _) = Storage::open(dir.path(), always_cfg()).unwrap();
        let commit = st.commit();
        let (tx, rx) = std::sync::mpsc::channel();
        let mut expected = Vec::new();
        for i in 0..8u64 {
            let (seq, deferred) = st.append_async(format!("r{i}").as_bytes()).unwrap();
            assert!(deferred);
            assert_eq!(seq, i);
            let tx = tx.clone();
            commit.ack_when(
                seq + 1,
                Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            );
            expected.push(seq + 1);
        }
        let mut got: Vec<u64> = (0..8)
            .map(|_| {
                rx.recv_timeout(std::time::Duration::from_secs(10))
                    .expect("ack within 10s")
                    .expect("durable, not poisoned")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(commit.durable_lsn() >= 8);
        assert_eq!(commit.pending_waiters(), 0);
        assert_eq!(st.stats().commit_waiters, 8);
    }

    #[test]
    fn thread_fsync_failure_poisons_storage() {
        let dir = TempDir::new("storage-group-poison");
        let (mut st, _) = Storage::open(dir.path(), always_cfg()).unwrap();
        st.append(b"fine").unwrap();
        st.commit().inject_fsync_failures(1);
        let err = st
            .append(b"doomed")
            .expect_err("fsync failure must surface");
        assert!(err.to_string().contains("injected fsync failure"), "{err}");
        // Poison is permanent: later appends fail with the original
        // error without touching the device again.
        let fsyncs = st.stats().fsyncs;
        for _ in 0..3 {
            assert!(st.append(b"after").is_err());
        }
        assert!(st.sync().is_err());
        assert_eq!(st.stats().fsyncs, fsyncs, "no fsync retried after poison");
        // Dropping joins the (already exited) fsync thread cleanly.
        drop(st);
    }

    #[test]
    fn snapshot_failure_is_counted_and_reported() {
        let dir = TempDir::new("storage-snap-fail");
        let (mut st, _) = Storage::open(dir.path(), cfg(0)).unwrap();
        st.append(b"r").unwrap();
        // Sabotage the snapshot directory: replace it with a plain file
        // so the tempfile write inside save() fails.
        let snap_dir = dir.path().join("snapshots");
        std::fs::remove_dir_all(&snap_dir).unwrap();
        std::fs::write(&snap_dir, b"not a directory").unwrap();
        assert!(st.install_snapshot(b"state").is_err());
        let stats = st.stats();
        assert_eq!(stats.snapshot_failures, 1);
        assert!(stats.last_snapshot_error.is_some());
        // A later success clears the sticky error but not the counter.
        std::fs::remove_file(&snap_dir).unwrap();
        std::fs::create_dir_all(&snap_dir).unwrap();
        st.install_snapshot(b"state").unwrap();
        let stats = st.stats();
        assert_eq!(stats.snapshot_failures, 1);
        assert!(stats.last_snapshot_error.is_none());
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("every=16"),
            Some(FsyncPolicy::EveryN(16))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
