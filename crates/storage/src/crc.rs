//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
//!
//! Every WAL record and snapshot payload carries one of these checksums so
//! recovery can distinguish "the process died mid-write" (torn tail) and
//! "the disk flipped a bit" (corrupt record) from valid data. Implemented
//! in-crate: the repository rule is no new external dependencies.

/// Precomputed per-byte update table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint:allow(truncation) i < 256, so the cast to u32 widens;
        // const fns cannot use TryFrom.
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state; feed chunks with [`Crc32::update`], read the
/// digest with [`Crc32::finalize`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            let idx = (crc ^ u32::from(b)) & 0xFF;
            // lint:allow(truncation) idx is masked to 0..=255, so the
            // cast to usize is exact on every target.
            crc = (crc >> 8) ^ TABLE[idx as usize];
        }
        self.state = crc;
    }

    /// The final digest.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"segmented write-ahead log";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn bit_flip_changes_digest() {
        let mut data = vec![0x55u8; 64];
        let clean = crc32(&data);
        data[40] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
