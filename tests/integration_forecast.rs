//! Cross-crate integration: train forecasting models on simulated history
//! and verify the route-network model's advantage on lane traffic (C5).

use datacron_forecast::{
    evaluate_horizons, reconstruct_tracks, DeadReckoningPredictor, MarkovGridModel, Predictor,
    RouteModel,
};
use datacron_geo::{Grid, TimeMs};
use datacron_model::PositionReport;
use datacron_sim::{generate_maritime, MaritimeConfig, NoiseModel};

fn history_and_test() -> (
    Vec<datacron_model::Trajectory>,
    Vec<datacron_model::Trajectory>,
) {
    let make = |seed| {
        let data = generate_maritime(&MaritimeConfig {
            seed,
            n_vessels: 40,
            duration_ms: TimeMs::from_hours(8).millis(),
            report_interval_ms: 60_000,
            noise: NoiseModel::none(),
            frac_loitering: 0.0,
            frac_gap: 0.0,
            frac_drifting: 0.0,
            n_rendezvous_pairs: 0,
        });
        let reports: Vec<PositionReport> = data
            .true_trajectories
            .iter()
            .flat_map(|t| {
                let obj = t.object;
                t.points().iter().map(move |p| {
                    PositionReport::maritime(
                        obj,
                        p.time,
                        p.position(),
                        p.speed_mps,
                        p.heading_deg,
                        datacron_model::SourceId::AIS_TERRESTRIAL,
                        datacron_model::NavStatus::UnderWay,
                    )
                })
            })
            .collect();
        reconstruct_tracks(&reports, 20 * 60_000)
    };
    (make(100), make(200))
}

#[test]
fn route_model_beats_dead_reckoning_at_long_horizons() {
    let (history, test) = history_and_test();
    let region = datacron_sim::aegean_world().region;
    let grid = Grid::new(region, 0.02).unwrap();

    let mut route = RouteModel::new(grid.clone());
    route.train_all(&history);
    assert!(route.route_count() > 3, "too few routes learned");

    let horizons = [40];
    let dr = evaluate_horizons(
        &DeadReckoningPredictor,
        &test,
        &horizons,
        30 * 60_000,
        20 * 60_000,
    );
    let rt = evaluate_horizons(&route, &test, &horizons, 30 * 60_000, 20 * 60_000);

    // Dead reckoning is exact on the straight legs that dominate the
    // median, so the route model's advantage shows in the tail: the p90
    // error — anchors whose future crosses a waypoint turn or a port
    // arrival — must be clearly lower with the learned routes.
    let dr40 = &dr[0];
    let rt40 = &rt[0];
    eprintln!(
        "40 min: route median {:.0} m p90 {:.0} m | dead-reckoning median {:.0} m p90 {:.0} m",
        rt40.stats.median_m, rt40.stats.p90_m, dr40.stats.median_m, dr40.stats.p90_m
    );
    assert!(rt40.stats.predicted > 20, "route model rarely applicable");
    assert!(
        rt40.stats.p90_m < dr40.stats.p90_m,
        "route p90 {:.0} m vs dead reckoning p90 {:.0} m at 40 min",
        rt40.stats.p90_m,
        dr40.stats.p90_m
    );
}

#[test]
fn markov_model_is_applicable_and_sane() {
    let (history, test) = history_and_test();
    let region = datacron_sim::aegean_world().region;
    let grid = Grid::new(region, 0.05).unwrap();
    let mut markov = MarkovGridModel::new(grid, 60_000);
    markov.train_all(&history);
    assert!(markov.state_count() > 100);

    let reports = evaluate_horizons(&markov, &test, &[10], 30 * 60_000, 20 * 60_000);
    let r = &reports[0];
    assert!(r.stats.predicted > 20, "markov rarely applicable");
    // 10-minute horizon at ≤ 9.5 m/s means ≤ 5.7 km of travel; a sane
    // model's median error stays within that envelope.
    assert!(
        r.stats.median_m < 6_000.0,
        "markov median {:.0} m at 10 min",
        r.stats.median_m
    );
}

#[test]
fn errors_grow_with_horizon_for_all_models() {
    let (history, test) = history_and_test();
    let region = datacron_sim::aegean_world().region;
    let grid = Grid::new(region, 0.05).unwrap();
    let mut route = RouteModel::new(grid);
    route.train_all(&history);

    let models: Vec<&dyn Predictor> = vec![&DeadReckoningPredictor, &route];
    for model in models {
        let reports = evaluate_horizons(model, &test, &[5, 60], 30 * 60_000, 20 * 60_000);
        let short = &reports[0].stats;
        let long = &reports[1].stats;
        if short.predicted > 10 && long.predicted > 10 {
            assert!(
                long.median_m > short.median_m,
                "{}: {:.0} m at 5 min vs {:.0} m at 60 min",
                model.name(),
                short.median_m,
                long.median_m
            );
        }
    }
}
