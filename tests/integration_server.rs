//! Loopback integration tests for datacron-server: concurrent clients,
//! admission-control backpressure, and protocol error handling.

use datacron_core::{PipelineConfig, PolygonSpec};
use datacron_geo::BoundingBox;
use datacron_server::client::{error_code, is_ok};
use datacron_server::{start, Client, Json, ServerConfig};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

fn test_config() -> ServerConfig {
    ServerConfig {
        pipeline: PipelineConfig {
            region: BoundingBox::new(19.0, 33.0, 30.0, 41.0),
            zones: vec![
                (
                    "west".to_string(),
                    PolygonSpec(vec![(20.0, 34.0), (23.0, 34.0), (23.0, 40.0), (20.0, 40.0)]),
                ),
                (
                    "east".to_string(),
                    PolygonSpec(vec![(26.0, 34.0), (29.0, 34.0), (29.0, 40.0), (26.0, 40.0)]),
                ),
            ],
            ..PipelineConfig::default()
        },
        heat_cell_deg: 0.25,
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_timeout(addr, Duration::from_secs(10)).expect("connect")
}

fn ingest_request(object: u64, t0_s: i64, n: usize, lon0: f64, lat: f64) -> Json {
    let reports: Vec<Json> = (0..n)
        .map(|i| {
            Json::obj()
                .field("object", object)
                .field("t_ms", (t0_s + i as i64 * 10) * 1000)
                .field("lon", lon0 + i as f64 * 0.01)
                .field("lat", lat)
                .field("speed_mps", 6.0)
                .field("heading_deg", 90.0)
                .build()
        })
        .collect();
    Json::obj()
        .field("type", "ingest")
        .field("reports", Json::Arr(reports))
        .build()
}

#[test]
fn concurrent_clients_ingest_and_query() {
    let handle = start(test_config()).expect("server start");
    let addr = handle.local_addr;

    // Seed some data so the query threads have something to read.
    let mut seed = connect(addr);
    let resp = seed.call(&ingest_request(1, 0, 50, 21.0, 37.0)).unwrap();
    assert!(is_ok(&resp), "seed ingest failed: {resp}");
    assert_eq!(resp.get("accepted").and_then(Json::as_u64), Some(50));

    // Five concurrent connections: two ingest writers, three query readers.
    let mut threads = Vec::new();
    for w in 0..2u64 {
        threads.push(thread::spawn(move || {
            let mut c = connect(addr);
            for round in 0..5 {
                let resp = c
                    .call(&ingest_request(
                        10 + w,
                        round * 1000,
                        20,
                        21.0 + w as f64,
                        36.0,
                    ))
                    .unwrap();
                assert!(is_ok(&resp), "ingest failed: {resp}");
            }
        }));
    }
    for r in 0..3u64 {
        threads.push(thread::spawn(move || {
            let mut c = connect(addr);
            for _ in 0..5 {
                let req = match r {
                    0 => Json::obj()
                        .field("type", "sparql")
                        .field("query", "SELECT ?n WHERE { ?n da:ofMovingObject da:obj/1 }")
                        .build(),
                    1 => Json::obj()
                        .field("type", "heatmap")
                        .field("top_k", 5u64)
                        .build(),
                    _ => Json::obj()
                        .field("type", "events")
                        .field("limit", 10u64)
                        .build(),
                };
                let resp = c.call(&req).unwrap();
                assert!(is_ok(&resp), "query failed: {resp}");
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread panicked");
    }

    // The sparql path sees the committed triples.
    let resp = seed
        .call(
            &Json::obj()
                .field("type", "sparql")
                .field("query", "SELECT ?n WHERE { ?n da:ofMovingObject da:obj/1 }")
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp));
    let rows = resp
        .get("result")
        .and_then(|r| r.get("row_count"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(rows > 0, "expected rows for seeded object");

    // Stats reflect the work: 6 connections, ingest + query latencies.
    let resp = seed
        .call(
            &Json::obj()
                .field("id", 99u64)
                .field("type", "stats")
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp));
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(99));
    let server = resp.get("server").unwrap();
    assert!(
        server
            .get("connections_accepted")
            .and_then(Json::as_u64)
            .unwrap()
            >= 6
    );
    assert!(server.get("requests_ok").and_then(Json::as_u64).unwrap() >= 26);
    let lat = server.get("request_latency").unwrap();
    assert!(
        lat.get("ingest").is_some(),
        "missing ingest latency: {server}"
    );
    assert!(
        lat.get("sparql").is_some(),
        "missing sparql latency: {server}"
    );
    let pipeline = resp.get("pipeline").unwrap();
    assert!(pipeline.get("reports_in").and_then(Json::as_u64).unwrap() >= 250);

    handle.shutdown();
}

#[test]
fn queue_full_returns_busy_instead_of_hanging() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    })
    .expect("server start");
    let addr = handle.local_addr;

    // A occupies the single worker: prove the worker owns the connection
    // (response received), then park it in a long sleep.
    let mut a = connect(addr);
    let resp = a.call(&Json::obj().field("type", "stats").build()).unwrap();
    assert!(is_ok(&resp));
    a.send(
        &Json::obj()
            .field("type", "sleep")
            .field("ms", 1500u64)
            .build(),
    )
    .unwrap();
    thread::sleep(Duration::from_millis(100));

    // B fills the one queue slot (no worker free to drain it).
    let _b = connect(addr);
    thread::sleep(Duration::from_millis(100));

    // C must be rejected immediately with `busy`, not left waiting.
    let started = Instant::now();
    let mut c = connect(addr);
    let resp = c.recv().expect("busy response");
    let waited = started.elapsed();
    assert!(!is_ok(&resp), "expected rejection, got {resp}");
    assert_eq!(error_code(&resp), Some("busy"));
    assert!(
        waited < Duration::from_millis(1000),
        "busy rejection took {waited:?}, should be immediate"
    );

    // A's sleep eventually completes and the rejection was counted.
    let resp = a.recv().unwrap();
    assert!(is_ok(&resp));
    let resp = a.call(&Json::obj().field("type", "stats").build()).unwrap();
    let server = resp.get("server").unwrap();
    assert!(
        server
            .get("connections_rejected")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    handle.shutdown();
}

#[test]
fn malformed_requests_get_errors_and_connection_survives() {
    let handle = start(test_config()).expect("server start");
    let mut c = connect(handle.local_addr);

    c.send_raw("this is not json").unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(error_code(&resp), Some("bad_request"));

    c.send_raw(r#"{"id":7,"type":"teleport"}"#).unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(error_code(&resp), Some("bad_request"));
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(7));

    c.send_raw(r#"{"type":"sparql","query":"SELECT garbage FROM nowhere"}"#)
        .unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(error_code(&resp), Some("query_error"));

    c.send_raw(r#"{"type":"sleep","ms":99999999}"#).unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(error_code(&resp), Some("too_large"));

    // The connection is still serviceable after every error.
    let resp = c.call(&Json::obj().field("type", "stats").build()).unwrap();
    assert!(is_ok(&resp));

    handle.shutdown();
}

#[test]
fn zone_transitions_feed_flows_and_events() {
    let handle = start(test_config()).expect("server start");
    let mut c = connect(handle.local_addr);

    // Sail object 5 west → gap → east: exit "west", later enter "east".
    let resp = c.call(&ingest_request(5, 0, 40, 20.5, 37.0)).unwrap();
    assert!(is_ok(&resp), "{resp}");
    let resp = c.call(&ingest_request(5, 2000, 40, 26.5, 37.0)).unwrap();
    assert!(is_ok(&resp), "{resp}");

    let resp = c
        .call(
            &Json::obj()
                .field("type", "events")
                .field("limit", 200u64)
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp));
    let events = resp
        .get("result")
        .and_then(|r| r.get("events"))
        .and_then(Json::as_array)
        .unwrap();
    assert!(!events.is_empty(), "expected CEP detections");

    let resp = c
        .call(
            &Json::obj()
                .field("type", "flows")
                .field("top_k", 10u64)
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp));
    // Flows require both an exit and a later entry; tolerate zero if the
    // detector coalesced them, but the endpoint must answer coherently.
    let total = resp
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .unwrap();
    let listed = resp
        .get("result")
        .and_then(|r| r.get("flows"))
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(listed.is_empty(), total == 0);

    let resp = c
        .call(
            &Json::obj()
                .field("type", "hotspots")
                .field("top_k", 3u64)
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp));

    handle.shutdown();
}
