//! Cross-crate integration: simulator → full pipeline → ground-truth
//! scoring, latency budget, and the compression-quality claim (C1/C8/E2).

use datacron_core::{run_threaded, Pipeline, PipelineConfig};
use datacron_geo::TimeMs;
use datacron_model::{labels::prf1, EventKind, PositionReport};
use datacron_sim::{generate_maritime, MaritimeConfig, NoiseModel};
use datacron_synopses::DeadReckoningCompressor;

fn scenario() -> datacron_sim::MaritimeData {
    generate_maritime(&MaritimeConfig {
        seed: 1234,
        n_vessels: 40,
        duration_ms: TimeMs::from_hours(6).millis(),
        report_interval_ms: 30_000,
        noise: NoiseModel {
            max_delay_ms: 0,
            outlier_prob: 0.002,
            ..NoiseModel::default()
        },
        frac_loitering: 0.15,
        frac_gap: 0.1,
        frac_drifting: 0.0,
        n_rendezvous_pairs: 2,
    })
}

fn run_pipeline(reports: &[PositionReport]) -> (Vec<datacron_model::EventRecord>, Pipeline) {
    let mut config = PipelineConfig::default();
    // Exclude ports so mooring together is not a rendezvous.
    for port in &datacron_sim::aegean_world().ports {
        config
            .exclusions
            .push((port.location.lon, port.location.lat, 4_000.0));
    }
    let mut p = Pipeline::new(config);
    let mut events = Vec::new();
    for r in reports {
        events.extend(p.process(r));
    }
    (events, p)
}

#[test]
fn end_to_end_recognition_meets_quality_bar() {
    let data = scenario();
    let reports: Vec<PositionReport> = data.reports.iter().map(|o| o.report).collect();
    let (events, pipeline) = run_pipeline(&reports);

    // The planted behaviours are found.
    for (kind, min_recall) in [
        (EventKind::Loitering, 0.6),
        (EventKind::Rendezvous, 0.5),
        (EventKind::DarkActivity, 0.6),
    ] {
        let detections: Vec<_> = events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| (e.objects.clone(), e.interval))
            .collect();
        let (tp, _fp, fn_) = data.truth.score_events(kind, &detections, 10 * 60_000);
        let (_, r, _) = prf1(tp, 0, fn_);
        assert!(
            r >= min_recall,
            "{} recall {r:.2} below {min_recall}",
            kind.tag()
        );
    }

    // The in-situ stage achieved meaningful compression.
    let m = pipeline.metrics();
    assert!(
        m.compression_ratio() > 0.4,
        "compression ratio {:.2}",
        m.compression_ratio()
    );

    // The paper's latency requirement: per-report processing in
    // milliseconds. p99 must be under 10 ms even in debug builds.
    let table = m.latency_table();
    let total = table.last().unwrap().1;
    assert!(
        total.p99_us < 10_000,
        "per-report p99 {} µs breaks the ms budget",
        total.p99_us
    );
}

#[test]
fn compression_preserves_analytics_quality() {
    // Claim C1: high compression "without affecting the quality of
    // analytics". Run recognition on the raw cleansed stream and on the
    // compressed stream; recall of planted events must not collapse.
    let data = scenario();
    let reports: Vec<PositionReport> = data.reports.iter().map(|o| o.report).collect();

    let mut compressor = DeadReckoningCompressor::new(100.0);
    let compressed: Vec<PositionReport> = reports
        .iter()
        .filter(|r| compressor.check(r))
        .copied()
        .collect();
    assert!(
        compressed.len() * 2 < reports.len(),
        "compression below 50% defeats the experiment"
    );

    let recall_of = |evts: &[datacron_model::EventRecord], kind: EventKind| {
        let detections: Vec<_> = evts
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| (e.objects.clone(), e.interval))
            .collect();
        let (tp, _fp, fn_) = data.truth.score_events(kind, &detections, 15 * 60_000);
        let (_, r, _) = prf1(tp, 0, fn_);
        r
    };

    let (raw_events, _) = run_pipeline(&reports);
    let (cmp_events, _) = run_pipeline(&compressed);

    for kind in [EventKind::Loitering, EventKind::DarkActivity] {
        let raw_r = recall_of(&raw_events, kind);
        let cmp_r = recall_of(&cmp_events, kind);
        assert!(
            cmp_r >= raw_r - 0.25,
            "{}: recall degraded {:.2} → {:.2} under compression",
            kind.tag(),
            raw_r,
            cmp_r
        );
    }
}

#[test]
fn threaded_deployment_handles_out_of_order_delivery() {
    let data = scenario();
    // Delivery order (out of order in event time) with watermark slack.
    let reports: Vec<PositionReport> = data
        .reports_delivery_order()
        .iter()
        .map(|o| o.report)
        .collect();
    let events = run_threaded(PipelineConfig::default(), reports, 5_000);
    assert!(
        !events.is_empty(),
        "threaded pipeline produced nothing on a 6-hour scenario"
    );
}
