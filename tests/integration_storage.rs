//! Crash-recovery integration tests for the durable server: kill and
//! restart on the same data directory, WAL-only replay, clean-shutdown
//! snapshots, and corrupted/truncated WAL tails.
//!
//! The identity tests compare a restarted durable server against a
//! never-restarted in-memory control fed the exact same batches: the
//! query-visible state (SPARQL answers, heatmap, flows, events, pipeline
//! counters) must be indistinguishable.

use datacron_core::{PipelineConfig, PolygonSpec};
use datacron_geo::BoundingBox;
use datacron_server::client::is_ok;
use datacron_server::codec::decode_batch;
use datacron_server::{start, Client, Json, ServerConfig};
use datacron_storage::test_util::TempDir;
use datacron_storage::{FsyncPolicy, Storage, StorageConfig};
use std::net::SocketAddr;
use std::path::Path;
use std::time::Duration;

fn test_config() -> ServerConfig {
    ServerConfig {
        pipeline: PipelineConfig {
            region: BoundingBox::new(19.0, 33.0, 30.0, 41.0),
            zones: vec![
                (
                    "west".to_string(),
                    PolygonSpec(vec![(20.0, 34.0), (23.0, 34.0), (23.0, 40.0), (20.0, 40.0)]),
                ),
                (
                    "east".to_string(),
                    PolygonSpec(vec![(26.0, 34.0), (29.0, 34.0), (29.0, 40.0), (26.0, 40.0)]),
                ),
            ],
            ..PipelineConfig::default()
        },
        heat_cell_deg: 0.25,
        ..ServerConfig::default()
    }
}

fn durable_config(dir: &Path, snapshot_every: u64) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        storage: StorageConfig {
            segment_bytes: 4096,
            fsync: FsyncPolicy::Always,
            snapshot_every_records: snapshot_every,
        },
        ..test_config()
    }
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_timeout(addr, Duration::from_secs(10)).expect("connect")
}

fn ingest_request(object: u64, t0_s: i64, n: usize, lon0: f64, lat: f64) -> Json {
    let reports: Vec<Json> = (0..n)
        .map(|i| {
            Json::obj()
                .field("object", object)
                .field("t_ms", (t0_s + i as i64 * 10) * 1000)
                .field("lon", lon0 + i as f64 * 0.01)
                .field("lat", lat)
                .field("speed_mps", 6.0)
                .field("heading_deg", 90.0)
                .build()
        })
        .collect();
    Json::obj()
        .field("type", "ingest")
        .field("reports", Json::Arr(reports))
        .build()
}

/// Feeds the deterministic batch sequence used by the identity tests:
/// three objects on distinct tracks, including a west→east zone
/// migration so flows and zone events exist.
fn feed(c: &mut Client) {
    for (obj, t0, lon, lat) in [
        (1u64, 0i64, 20.5, 37.0),
        (2, 0, 21.0, 36.0),
        (1, 2000, 26.5, 37.0),
        (3, 0, 27.0, 38.5),
        (2, 3000, 21.5, 36.0),
    ] {
        let resp = c.call(&ingest_request(obj, t0, 30, lon, lat)).unwrap();
        assert!(is_ok(&resp), "ingest failed: {resp}");
    }
}

/// Everything query-visible, normalised so legitimate nondeterminism
/// (timings, top-k tie order) can't cause false mismatches.
fn fingerprint(c: &mut Client) -> Vec<String> {
    let mut out = Vec::new();
    let resp = c
        .call(
            &Json::obj()
                .field("type", "sparql")
                .field("query", "SELECT ?n ?o WHERE { ?n da:ofMovingObject ?o }")
                .field("limit", 10_000u64)
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp), "{resp}");
    let result = resp.get("result").unwrap();
    let mut rows: Vec<String> = result
        .get("rows")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|r| r.to_string())
        .collect();
    rows.sort_unstable();
    out.push(format!(
        "sparql rows={} {:?}",
        result.get("row_count").and_then(Json::as_u64).unwrap(),
        rows
    ));
    for (ep, list_key) in [("heatmap", "cells"), ("flows", "flows")] {
        let resp = c
            .call(
                &Json::obj()
                    .field("type", ep)
                    .field("top_k", 1000u64)
                    .build(),
            )
            .unwrap();
        assert!(is_ok(&resp), "{resp}");
        let result = resp.get("result").unwrap();
        let mut items: Vec<String> = result
            .get(list_key)
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|x| x.to_string())
            .collect();
        items.sort_unstable();
        let mut scalars: Vec<String> = Vec::new();
        if let Json::Obj(fields) = result {
            for (k, v) in fields {
                if k != list_key {
                    scalars.push(format!("{k}={v}"));
                }
            }
        }
        out.push(format!("{ep} {scalars:?} {items:?}"));
    }
    let resp = c
        .call(
            &Json::obj()
                .field("type", "events")
                .field("limit", 1000u64)
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp), "{resp}");
    out.push(format!("events {}", resp.get("result").unwrap()));
    let resp = c.call(&Json::obj().field("type", "stats").build()).unwrap();
    assert!(is_ok(&resp), "{resp}");
    let pipeline = resp.get("pipeline").unwrap();
    for key in [
        "reports_in",
        "reports_clean",
        "reports_kept",
        "events",
        "triples",
        "graph_len",
    ] {
        out.push(format!(
            "pipeline.{key}={}",
            pipeline.get(key).and_then(Json::as_u64).unwrap()
        ));
    }
    out
}

fn object_rows(c: &mut Client, object: u64) -> u64 {
    let resp = c
        .call(
            &Json::obj()
                .field("type", "sparql")
                .field(
                    "query",
                    &*format!("SELECT ?n WHERE {{ ?n da:ofMovingObject da:obj/{object} }}"),
                )
                .build(),
        )
        .unwrap();
    assert!(is_ok(&resp), "{resp}");
    resp.get("result")
        .and_then(|r| r.get("row_count"))
        .and_then(Json::as_u64)
        .unwrap()
}

/// The newest WAL segment file under the data dir.
fn newest_segment(dir: &Path) -> std::path::PathBuf {
    let mut segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
        .expect("wal dir")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

#[test]
fn kill_and_restart_replays_wal_to_identical_state() {
    let dir = TempDir::new("itest-replay");
    // Snapshots off: recovery is a pure WAL replay from birth, so the
    // CEP detectors see the identical report stream as the control.
    let control = start(test_config()).expect("control start");
    let durable = start(durable_config(dir.path(), 0)).expect("durable start");

    feed(&mut connect(control.local_addr));
    feed(&mut connect(durable.local_addr));

    // Unclean stop: no final fsync, no shutdown snapshot.
    durable.abort();

    let restarted = start(durable_config(dir.path(), 0)).expect("restart");
    let want = fingerprint(&mut connect(control.local_addr));
    let got = fingerprint(&mut connect(restarted.local_addr));
    assert_eq!(got, want, "restarted state must match the control");

    restarted.shutdown();
    control.shutdown();
}

#[test]
fn snapshot_recovery_matches_control_and_retires_segments() {
    let dir = TempDir::new("itest-snap");
    // Snapshot after every batch: recovery is snapshot-only (empty WAL
    // tail), exercising the full state codec instead of replay.
    let control = start(test_config()).expect("control start");
    let durable = start(durable_config(dir.path(), 1)).expect("durable start");

    feed(&mut connect(control.local_addr));
    feed(&mut connect(durable.local_addr));

    // Snapshots bound the log: covered segments are retired.
    let mut c = connect(durable.local_addr);
    let resp = c.call(&Json::obj().field("type", "stats").build()).unwrap();
    assert!(is_ok(&resp), "{resp}");
    assert!(resp.get("uptime_ms").and_then(Json::as_u64).is_some());
    let storage = resp.get("storage").expect("storage stats section");
    assert_eq!(
        storage.get("records_since_snapshot").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(storage.get("segments").and_then(Json::as_u64), Some(1));
    assert!(storage.get("fsyncs").and_then(Json::as_u64).unwrap() >= 5);
    assert!(storage.get("fsync_p99_us").and_then(Json::as_u64).is_some());
    drop(c);

    durable.abort();
    let restarted = start(durable_config(dir.path(), 1)).expect("restart");
    let want = fingerprint(&mut connect(control.local_addr));
    let got = fingerprint(&mut connect(restarted.local_addr));
    assert_eq!(got, want, "snapshot-recovered state must match the control");

    restarted.shutdown();
    control.shutdown();
}

#[test]
fn clean_shutdown_installs_final_snapshot_with_empty_tail() {
    let dir = TempDir::new("itest-clean");
    let handle = start(durable_config(dir.path(), 0)).expect("start");
    feed(&mut connect(handle.local_addr));
    handle.shutdown();

    // The directory holds a snapshot covering everything: no tail to
    // replay, nothing truncated.
    let (_, recovery) = Storage::open(
        dir.path(),
        StorageConfig {
            segment_bytes: 4096,
            fsync: FsyncPolicy::Always,
            snapshot_every_records: 0,
        },
    )
    .expect("reopen");
    let (_, payload) = recovery.snapshot.expect("clean-shutdown snapshot");
    assert!(!payload.is_empty());
    assert!(
        recovery.wal_tail.is_empty(),
        "tail: {}",
        recovery.wal_tail.len()
    );
    assert!(recovery.truncation.is_none());

    // And the restarted server serves from it.
    let restarted = start(durable_config(dir.path(), 0)).expect("restart");
    let mut c = connect(restarted.local_addr);
    assert!(object_rows(&mut c, 1) > 0);
    assert!(object_rows(&mut c, 3) > 0);
    drop(c);
    restarted.shutdown();
}

/// Appends one batch per object so WAL records map 1:1 to objects, kills
/// the server, damages the log tail, and asserts recovery keeps every
/// record before the damage and drops everything after — no panics.
fn corrupt_tail_case(tag: &str, damage: impl FnOnce(&Path)) {
    let dir = TempDir::new(tag);
    let handle = start(durable_config(dir.path(), 0)).expect("start");
    let mut c = connect(handle.local_addr);
    for obj in 0..6u64 {
        let resp = c
            .call(&ingest_request(100 + obj, 0, 10, 20.5 + obj as f64, 37.0))
            .unwrap();
        assert!(is_ok(&resp), "{resp}");
    }
    drop(c);
    handle.abort();

    damage(dir.path());

    let restarted = start(durable_config(dir.path(), 0)).expect("restart after damage");
    let mut c = connect(restarted.local_addr);
    // Damage hit the newest record(s): the first objects must have
    // survived, the last must be gone.
    for obj in 0..4u64 {
        assert!(
            object_rows(&mut c, 100 + obj) > 0,
            "object {} lost before the damaged tail",
            100 + obj
        );
    }
    assert_eq!(
        object_rows(&mut c, 105),
        0,
        "damaged final record must not replay"
    );
    // The recovered server keeps accepting writes.
    let resp = c.call(&ingest_request(200, 0, 10, 22.0, 37.0)).unwrap();
    assert!(is_ok(&resp), "{resp}");
    assert!(object_rows(&mut c, 200) > 0);
    drop(c);
    restarted.shutdown();
}

#[test]
fn bit_flipped_tail_recovers_to_last_valid_record() {
    corrupt_tail_case("itest-bitflip", |dir| {
        let seg = newest_segment(dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x80;
        std::fs::write(&seg, &bytes).unwrap();
    });
}

/// Crash-torture for group commit: concurrent clients hammer durable
/// ingest at `fsync=always`, each recording exactly the batches the
/// server acknowledged; the server is `abort()`ed mid-stream (no final
/// fsync, pending group-commit work abandoned); recovery must contain
/// every acknowledged batch. Durable-but-unacked extras are allowed —
/// the invariant under test is ack ⟹ durable, never the converse.
///
/// Each batch uses a unique object id encoding (client, batch), so "batch
/// replayed" reduces to "object present in the decoded WAL".
#[test]
fn crash_torture_every_acked_batch_survives_abort() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    const CLIENTS: u64 = 8;
    let dir = TempDir::new("itest-torture");
    let handle = start(durable_config(dir.path(), 0)).expect("start");
    let addr = handle.local_addr;

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(CLIENTS as usize + 1));
    let mut threads = Vec::new();
    for client in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut c = connect(addr);
            let mut acked: Vec<u64> = Vec::new();
            barrier.wait();
            for batch in 0.. {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let object = 10_000 + client * 10_000 + batch;
                // An errored or unread response simply isn't recorded:
                // losing an unacked batch is legal, losing an acked one
                // is the bug this test exists to catch.
                match c.call(&ingest_request(object, 0, 2, 20.0 + client as f64, 36.0)) {
                    Ok(resp) if is_ok(&resp) => acked.push(object),
                    _ => break,
                }
            }
            acked
        }));
    }

    barrier.wait();
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::SeqCst);
    // Mid-stream unclean stop: closes every connection (unblocking any
    // client still waiting on a response) and abandons pending fsyncs.
    handle.abort();
    let acked: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    assert!(
        acked.len() as u64 >= CLIENTS,
        "torture run acked too little ({} batches) to be meaningful",
        acked.len()
    );

    // Recover the directory and decode what actually hit the log.
    let (_, recovery) = Storage::open(
        dir.path(),
        StorageConfig {
            segment_bytes: 4096,
            fsync: FsyncPolicy::Always,
            snapshot_every_records: 0,
        },
    )
    .expect("reopen");
    assert!(recovery.snapshot.is_none(), "snapshots were disabled");
    let recovered: std::collections::HashSet<u64> = recovery
        .wal_tail
        .iter()
        .flat_map(|(_, payload)| decode_batch(payload).expect("decode recovered batch"))
        .map(|r| r.object.raw())
        .collect();
    let lost: Vec<u64> = acked
        .iter()
        .copied()
        .filter(|o| !recovered.contains(o))
        .collect();
    assert!(
        lost.is_empty(),
        "{} acked batches lost after crash (of {} acked, {} recovered): {:?}",
        lost.len(),
        acked.len(),
        recovered.len(),
        &lost[..lost.len().min(16)]
    );

    // And a restarted server replays them into query-visible state.
    let restarted = start(durable_config(dir.path(), 0)).expect("restart");
    let mut c = connect(restarted.local_addr);
    for &object in acked.iter().take(3).chain(acked.iter().rev().take(3)) {
        assert!(
            object_rows(&mut c, object) > 0,
            "acked object {object} missing after replay"
        );
    }
    drop(c);
    restarted.shutdown();
}

#[test]
fn truncated_tail_recovers_without_panic() {
    corrupt_tail_case("itest-truncate", |dir| {
        let seg = newest_segment(dir);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
    });
}
