//! Cross-crate integration: CSV → parse → RDF mapping → partitioned
//! query answering (C2 + C4 together).

use datacron_geo::TimeMs;
use datacron_rdf::{
    execute, parse_query, Graph, HashPartitioner, PartitionedStore, SpatialGridPartitioner,
    TemporalPartitioner,
};
use datacron_sim::{generate_maritime, MaritimeConfig, NoiseModel};
use datacron_transform::{parse_ais_csv, report_to_ais_csv, RdfMapper};

fn scenario() -> datacron_sim::MaritimeData {
    generate_maritime(&MaritimeConfig {
        seed: 55,
        n_vessels: 25,
        duration_ms: TimeMs::from_hours(2).millis(),
        report_interval_ms: 60_000,
        noise: NoiseModel::none(),
        frac_loitering: 0.0,
        frac_gap: 0.0,
        frac_drifting: 0.0,
        n_rendezvous_pairs: 0,
    })
}

#[test]
fn csv_round_trip_preserves_reports() {
    let data = scenario();
    let csv: String = data
        .reports
        .iter()
        .map(|o| report_to_ais_csv(&o.report))
        .collect::<Vec<_>>()
        .join("\n");
    let (parsed, errors) = parse_ais_csv(&csv);
    assert!(errors.is_empty(), "round trip produced errors: {errors:?}");
    assert_eq!(parsed.len(), data.reports.len());
    for (orig, round) in data.reports.iter().zip(&parsed) {
        assert_eq!(orig.report.time, round.time);
        assert!((orig.report.lon - round.lon).abs() < 1e-5);
        assert!((orig.report.lat - round.lat).abs() < 1e-5);
    }
}

#[test]
fn mapped_store_answers_equivalently_under_all_partitioners() {
    let data = scenario();
    let mut graph = Graph::new();
    let mut mapper = RdfMapper::new();
    for v in &data.vessels {
        mapper.map_vessel_info(&mut graph, v);
    }
    for obs in &data.reports {
        mapper.map_report(&mut graph, &obs.report, None);
    }
    graph.commit();
    assert_eq!(graph.len() as u64, mapper.triples_emitted());

    let queries = [
        "SELECT ?v WHERE { ?v rdf:type da:Vessel }",
        "SELECT ?n WHERE { ?n da:hasGeometry ?g . FILTER st_within(?g, 23.0, 36.5, 25.0, 38.5) }",
        "SELECT ?n WHERE { ?n da:hasTemporalFeature ?t . FILTER t_between(?t, 0, 1800000) }",
        "SELECT ?v ?s WHERE { ?n da:ofMovingObject ?v . ?n da:speed ?s . FILTER (?s > 9.0) }",
    ];
    let region = data.world.region;
    let stores = [
        PartitionedStore::build(&graph, Box::new(HashPartitioner::new(4))),
        PartitionedStore::build(
            &graph,
            Box::new(SpatialGridPartitioner::new(4, region, 0.5)),
        ),
        PartitionedStore::build(
            &graph,
            Box::new(TemporalPartitioner::new(4, TimeMs(0), 30 * 60_000)),
        ),
    ];
    for q_text in queries {
        let q = parse_query(q_text).unwrap();
        let (single, _) = execute(&graph, &q);
        for (i, store) in stores.iter().enumerate() {
            let (parted, _) = store.execute(&q);
            assert_eq!(
                single.len(),
                parted.rows.len(),
                "partitioner {i} disagrees on: {q_text}"
            );
        }
    }
}

#[test]
fn spatial_partitioner_prunes_spatial_queries() {
    let data = scenario();
    let mut graph = Graph::new();
    let mut mapper = RdfMapper::new();
    for obs in &data.reports {
        mapper.map_report(&mut graph, &obs.report, None);
    }
    graph.commit();
    let store = PartitionedStore::build(
        &graph,
        Box::new(SpatialGridPartitioner::new(8, data.world.region, 0.5)),
    );
    let q = parse_query(
        "SELECT ?n WHERE { ?n da:hasGeometry ?g . FILTER st_within(?g, 23.4, 37.7, 23.8, 38.1) }",
    )
    .unwrap();
    let (_, stats) = store.execute(&q);
    assert!(
        stats.partitions_touched < stats.partitions_total,
        "spatial routing failed: {stats:?}"
    );
}
